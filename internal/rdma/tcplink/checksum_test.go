package tcplink

import (
	"net"
	"sync"
	"testing"
	"time"

	"cyclojoin/internal/rdma"
	"cyclojoin/internal/rdma/rdmatest"
)

// TestChecksummedConformance: the checksummed variant must satisfy the
// exact same transport semantics.
func TestChecksummedConformance(t *testing.T) {
	rdmatest.Run(t, func(t *testing.T) (rdma.QueuePair, rdma.QueuePair) {
		c1, c2 := net.Pipe()
		return NewChecksummed(c1), NewChecksummed(c2)
	})
}

func TestChecksummedWriteConformance(t *testing.T) {
	rdmatest.RunWrites(t, func(t *testing.T) (rdma.QueuePair, rdma.QueuePair) {
		c1, c2 := net.Pipe()
		return NewChecksummed(c1), NewChecksummed(c2)
	})
}

// corruptingConn flips one payload byte after `after` bytes have passed.
type corruptingConn struct {
	net.Conn
	mu      sync.Mutex
	after   int
	written int
	done    bool
}

func (c *corruptingConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if !c.done && c.written+len(b) > c.after {
		idx := c.after - c.written
		if idx >= 0 && idx < len(b) {
			mutated := append([]byte(nil), b...)
			mutated[idx] ^= 0xff
			b = mutated
			c.done = true
		}
	}
	c.written += len(b)
	c.mu.Unlock()
	return c.Conn.Write(b)
}

// TestChecksumDetectsCorruption: a bit flip on the wire must surface as a
// link error, never as silently corrupted data.
func TestChecksumDetectsCorruption(t *testing.T) {
	p1, p2 := net.Pipe()
	// Corrupt a byte well inside the first frame's payload (header is
	// 5 bytes; payload starts after it).
	sender := NewChecksummed(&corruptingConn{Conn: p1, after: 20})
	receiver := NewChecksummed(p2)
	defer func() {
		_ = sender.Close()
		_ = receiver.Close()
	}()
	dev := rdma.OpenDevice("t")
	rb, err := dev.Register(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := receiver.PostRecv(rb); err != nil {
		t.Fatal(err)
	}
	sb, err := dev.Register(128)
	if err != nil {
		t.Fatal(err)
	}
	copy(sb.Data(), "a payload that will get one byte flipped in transit")
	if err := sb.SetLen(52); err != nil {
		t.Fatal(err)
	}
	if err := sender.PostSend(sb); err != nil {
		t.Fatal(err)
	}
	select {
	case c, ok := <-receiver.Completions():
		if ok && c.Err == nil {
			t.Fatal("corrupted frame delivered without error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no completion after corruption")
	}
}

// TestNoChecksumMissesCorruption documents the baseline: without CRC the
// flip goes through silently — which is why the option exists.
func TestNoChecksumMissesCorruption(t *testing.T) {
	p1, p2 := net.Pipe()
	sender := New(&corruptingConn{Conn: p1, after: 20})
	receiver := New(p2)
	defer func() {
		_ = sender.Close()
		_ = receiver.Close()
	}()
	dev := rdma.OpenDevice("t")
	rb, err := dev.Register(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := receiver.PostRecv(rb); err != nil {
		t.Fatal(err)
	}
	sb, err := dev.Register(128)
	if err != nil {
		t.Fatal(err)
	}
	payload := "a payload that will get one byte flipped in transit"
	copy(sb.Data(), payload)
	if err := sb.SetLen(len(payload)); err != nil {
		t.Fatal(err)
	}
	if err := sender.PostSend(sb); err != nil {
		t.Fatal(err)
	}
	select {
	case c, ok := <-receiver.Completions():
		if !ok || c.Err != nil {
			t.Fatalf("unexpected failure: %v", c.Err)
		}
		if string(c.Buf.Bytes()) == payload {
			t.Fatal("expected the corrupted payload to differ")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no completion")
	}
}
