// Package tcplink carries the rdma.QueuePair semantics over a real TCP
// connection (any net.Conn).
//
// This is the deployment path for a Data Roundabout without RDMA hardware:
// the programming model upstairs is unchanged — pre-registered buffers,
// asynchronous work requests, completion queues, in-order exactly-once
// messages — while the wire underneath is an ordinary socket. It is also
// how the test suite runs the full ring over the loopback interface.
//
// Framing is one type byte (send / write / write-with-immediate) plus a
// 4-byte big-endian payload length, followed by per-type header fields. A
// message larger than the peer's posted receive buffer, or a one-sided
// write naming an unknown key or exceeding the exposed extent, is a fatal
// link error, as on real RNICs. Each frame reaches the socket in a single
// writev (header, payload and CRC trailer coalesced), and work requests
// the 32-bit wire fields cannot carry are rejected at post time with
// ErrFrameTooLarge / ErrOffsetOutOfRange rather than corrupting the
// stream.
//
// With NewChecksummed, every frame additionally carries a CRC-32C of its
// payload, verified at the receiver — end-to-end integrity over links that
// cannot be trusted the way a machine-room switch can (iWARP gets this
// from TCP checksums plus the MPA CRC; both endpoints must enable it).
package tcplink

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cyclojoin/internal/metrics"
	"cyclojoin/internal/rdma"
	"cyclojoin/internal/trace"
)

// linkSeq names flight-recorder tracks across all links in the process.
var linkSeq atomic.Int64

// castagnoli is the CRC-32C table (the polynomial iWARP's MPA layer uses).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const queueDepth = 256

// defaultMaxFrame bounds payload sizes in both directions: at the
// receiver it guards against corrupt length prefixes, at the sender it
// keeps payload lengths far away from the uint32 wire field's wrap
// point (a ≥ 4 GiB payload would otherwise truncate silently and
// corrupt the stream). Tests shrink the limit via newLink.
const defaultMaxFrame = 1 << 30

// maxWireOffset is the largest write offset the 4-byte wire field can
// carry.
const maxWireOffset = math.MaxUint32

// ErrFrameTooLarge is returned by PostSend/PostWrite/PostWriteImm when
// the payload exceeds the maximum frame size. The work request is
// rejected before anything reaches the wire.
var ErrFrameTooLarge = errors.New("tcplink: frame exceeds the maximum frame size")

// ErrOffsetOutOfRange is returned by PostWrite/PostWriteImm when the
// remote offset (or offset plus payload length) cannot be represented
// in the wire format's 32-bit offset field.
var ErrOffsetOutOfRange = errors.New("tcplink: write offset not representable on the wire")

// DefaultDialTimeout bounds Dial: a black-holed peer (dead machine,
// dropped SYNs) turns into a diagnosable error instead of wedging ring
// construction forever.
const DefaultDialTimeout = 10 * time.Second

// Hot-path instrumentation. Frames and bytes are counted per direction;
// updates are single atomic adds (see internal/metrics).
var (
	mTxFrames    = metrics.Default().Counter("tcplink_frames_total", "frames moved over tcplink connections", "dir", "tx")
	mRxFrames    = metrics.Default().Counter("tcplink_frames_total", "frames moved over tcplink connections", "dir", "rx")
	mTxBytes     = metrics.Default().Counter("tcplink_bytes_total", "payload bytes moved over tcplink connections", "dir", "tx")
	mRxBytes     = metrics.Default().Counter("tcplink_bytes_total", "payload bytes moved over tcplink connections", "dir", "rx")
	mCompletions = metrics.Default().Counter("tcplink_completions_total", "completions delivered to applications")
	mCRCFailures = metrics.Default().Counter("tcplink_checksum_failures_total", "CRC-32C payload mismatches detected at the receiver")
	mPostRejects = metrics.Default().Counter("tcplink_post_rejects_total", "work requests rejected by sender-side validation")
	mFlushed     = metrics.Default().Counter("tcplink_flushed_total", "posted work requests flushed with an error completion at shutdown")
	mFlushDrops  = metrics.Default().Counter("tcplink_flush_drops_total", "flush completions dropped because the completion queue was full at shutdown")
	mSendDepth   = metrics.Default().Gauge("tcplink_send_queue_depth", "posted work requests not yet on the wire")
	mFrameBytes  = metrics.Default().Histogram("tcplink_frame_bytes", "transmitted frame payload sizes",
		metrics.ExponentialBounds(1024, 4, 10))
)

// Frame types.
const (
	frameSend     = 0
	frameWrite    = 1
	frameWriteImm = 2
)

// maxBatch bounds how many sends ride in one work request (larger batches
// split transparently). The bound keeps the batch in a fixed array INSIDE
// the workReq, so the caller's slice is copied out at post time — the
// caller may reuse its scratch immediately — with no per-batch heap
// allocation, and lets writeLoop size its frame-assembly scratch statically.
const maxBatch = 16

// workReq is one outbound work request (send, one-sided write, or a
// doorbell-batched run of sends).
type workReq struct {
	kind   rdma.Op
	buf    *rdma.Buffer
	key    rdma.RemoteKey
	off    int
	imm    uint32
	hasImm bool
	// batchLen > 0 marks a batched send: the buffers are batchArr[:batchLen]
	// and buf is nil. Inline array, not a slice — the workReq is copied by
	// value through sendQ.
	batchLen int
	batchArr [maxBatch]*rdma.Buffer
	// pend is the flight-recorder span opened at post time and closed
	// once the frame is on the wire (WR post→completion latency). A batch
	// carries one span for the whole run — the doorbell is the unit.
	pend trace.Pending
}

type link struct {
	conn     net.Conn
	checksum bool
	// maxFrame is the largest payload accepted in either direction
	// (defaultMaxFrame outside tests).
	maxFrame int
	// coalesce stages header+payload+CRC into one Write for conns that
	// lack a writev fast path (net.Pipe in tests); owned by writeLoop.
	coalesce []byte
	// isTCP selects the net.Buffers writev fast path.
	isTCP bool

	sendQ chan workReq
	recvQ chan *rdma.Buffer
	cq    chan rdma.Completion

	// shard records this link's work-request spans on the transport
	// track; inert when flight recording is disabled.
	shard *trace.Shard

	mu      sync.Mutex
	exposed map[rdma.RemoteKey]*rdma.Buffer
	nextKey rdma.RemoteKey
	// recvPend holds the open WRRecv span per posted receive buffer
	// (guarded by mu): posted→filled is the buffer's residency time.
	recvPend map[*rdma.Buffer]trace.Pending

	failOnce  sync.Once
	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup

	// pendMu guards pendingFail: a fatal completion that found the CQ
	// full is parked here instead of dropped — it may carry the receive
	// buffer the failed frame consumed, and losing it would shrink the
	// application's pool permanently. Close's flush delivers it first.
	pendMu      sync.Mutex
	pendingFail []rdma.Completion
}

var (
	_ rdma.WriteQueuePair = (*link)(nil)
	_ rdma.BatchQueuePair = (*link)(nil)
)

// New wraps an established connection in a queue pair. The link owns the
// connection and closes it on Close.
func New(conn net.Conn) rdma.QueuePair {
	return newLink(conn, false, defaultMaxFrame)
}

// NewChecksummed is New with per-frame CRC-32C payload verification. Both
// endpoints must use it.
func NewChecksummed(conn net.Conn) rdma.QueuePair {
	return newLink(conn, true, defaultMaxFrame)
}

func newLink(conn net.Conn, checksum bool, maxFrame int) *link {
	_, isTCP := conn.(*net.TCPConn)
	l := &link{
		conn:     conn,
		checksum: checksum,
		maxFrame: maxFrame,
		isTCP:    isTCP,
		sendQ:    make(chan workReq, queueDepth),
		recvQ:    make(chan *rdma.Buffer, queueDepth),
		cq:       make(chan rdma.Completion, rdma.CQDepth),
		exposed:  make(map[rdma.RemoteKey]*rdma.Buffer),
		recvPend: make(map[*rdma.Buffer]trace.Pending),
		done:     make(chan struct{}),
		shard:    trace.Flight().Shard(trace.NodeTransport, "tcplink/"+strconv.FormatInt(linkSeq.Add(1), 10)),
	}
	l.wg.Add(2)
	go func() {
		defer l.wg.Done()
		l.writeLoop()
	}()
	go func() {
		defer l.wg.Done()
		l.readLoop()
	}()
	return l
}

// Dial connects to a listening peer and returns the queue pair. The
// connection attempt is bounded by DefaultDialTimeout; use DialTimeout
// to choose the deadline.
func Dial(addr string) (rdma.QueuePair, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout is Dial with an explicit connection deadline. The
// configured timeout is surfaced in the error so a wedged ring
// construction names the budget that was exceeded.
func DialTimeout(addr string, timeout time.Duration) (rdma.QueuePair, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcplink: dial %s (timeout %v): %w", addr, timeout, err)
	}
	return New(conn), nil
}

// Listener accepts queue pairs.
type Listener struct {
	ln net.Listener
}

// Listen starts listening on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcplink: listen %s: %w", addr, err)
	}
	return &Listener{ln: ln}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Accept waits for one connection and wraps it.
func (l *Listener) Accept() (rdma.QueuePair, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("tcplink: accept: %w", err)
	}
	return New(conn), nil
}

// Close stops listening.
func (l *Listener) Close() error { return l.ln.Close() }

func (l *link) writeLoop() {
	// Header: type byte + payload length + (for writes) key, offset and
	// optional immediate.
	var hdr [17]byte
	var sum [4]byte
	var parts [3][]byte
	// Batch frame-assembly scratch: every frame of a doorbell batch needs
	// its own header and CRC trailer alive until the single writev, so
	// they are statically sized by maxBatch (send headers are 5 bytes).
	var bhdrs [maxBatch * 5]byte
	var bsums [maxBatch][4]byte
	var bparts [maxBatch * 3][]byte
	for {
		var wr workReq
		select {
		case <-l.done:
			return
		case wr = <-l.sendQ:
		}
		if wr.batchLen > 0 {
			if !l.writeBatch(&wr, bhdrs[:], &bsums, bparts[:0]) {
				return
			}
			continue
		}
		mSendDepth.Dec()
		payload := wr.buf.Bytes()
		n := 5
		binary.BigEndian.PutUint32(hdr[1:5], uint32(len(payload)))
		switch {
		case wr.kind == rdma.OpSend:
			hdr[0] = frameSend
		case wr.hasImm:
			hdr[0] = frameWriteImm
			binary.BigEndian.PutUint32(hdr[5:9], uint32(wr.key))
			binary.BigEndian.PutUint32(hdr[9:13], uint32(wr.off))
			binary.BigEndian.PutUint32(hdr[13:17], wr.imm)
			n = 17
		default:
			hdr[0] = frameWrite
			binary.BigEndian.PutUint32(hdr[5:9], uint32(wr.key))
			binary.BigEndian.PutUint32(hdr[9:13], uint32(wr.off))
			n = 13
		}
		k := 0
		parts[k] = hdr[:n]
		k++
		parts[k] = payload
		k++
		if l.checksum {
			binary.BigEndian.PutUint32(sum[:], crc32.Checksum(payload, castagnoli))
			parts[k] = sum[:]
			k++
		}
		if err := l.writeFrame(parts[:k]); err != nil {
			l.fail(rdma.Completion{Op: wr.kind, Buf: wr.buf, Err: fmt.Errorf("tcplink: write frame: %w", err)})
			return
		}
		mTxFrames.Inc()
		mTxBytes.Add(int64(len(payload)))
		mFrameBytes.Observe(int64(len(payload)))
		wr.pend.Arg = int64(len(payload))
		wr.pend.Aux = int64(len(l.cq))
		l.shard.End(wr.pend)
		l.complete(rdma.Completion{Op: wr.kind, Buf: wr.buf})
	}
}

// writeBatch puts every frame of a doorbell-batched send run on the wire
// with a single writev: all headers, payloads and CRC trailers become one
// iovec list, so a batch of N frames costs one syscall instead of N. One
// OpSend completion is raised per buffer, in order. Reports false on a
// fatal write error (the loop must exit); every batch buffer has received
// its terminal completion by then.
func (l *link) writeBatch(wr *workReq, bhdrs []byte, bsums *[maxBatch][4]byte, parts [][]byte) bool {
	mSendDepth.Add(-int64(wr.batchLen))
	total := 0
	for i := 0; i < wr.batchLen; i++ {
		payload := wr.batchArr[i].Bytes()
		h := bhdrs[i*5 : i*5+5]
		h[0] = frameSend
		binary.BigEndian.PutUint32(h[1:5], uint32(len(payload)))
		parts = append(parts, h, payload)
		if l.checksum {
			binary.BigEndian.PutUint32(bsums[i][:], crc32.Checksum(payload, castagnoli))
			parts = append(parts, bsums[i][:])
		}
		total += len(payload)
		mFrameBytes.Observe(int64(len(payload)))
	}
	if err := l.writeFrame(parts); err != nil {
		// The dequeued batch is invisible to flush: deliver every
		// buffer's terminal completion here. fail() takes the first (it
		// carries the wire error and tears the link down); the rest are
		// flushed, parked with pendingFail when the CQ is full so no
		// buffer is ever silently lost.
		l.fail(rdma.Completion{Op: rdma.OpSend, Buf: wr.batchArr[0], Err: fmt.Errorf("tcplink: write batch: %w", err)})
		for _, b := range wr.batchArr[1:wr.batchLen] {
			c := rdma.Completion{Op: rdma.OpSend, Buf: b, Err: rdma.ErrFlushed}
			select {
			case l.cq <- c:
			default:
				l.pendMu.Lock()
				l.pendingFail = append(l.pendingFail, c)
				l.pendMu.Unlock()
			}
		}
		return false
	}
	mTxFrames.Add(int64(wr.batchLen))
	mTxBytes.Add(int64(total))
	wr.pend.Arg = int64(total)
	wr.pend.Aux = int64(len(l.cq))
	l.shard.End(wr.pend)
	for i := 0; i < wr.batchLen; i++ {
		l.complete(rdma.Completion{Op: rdma.OpSend, Buf: wr.batchArr[i]})
	}
	return true
}

// writeFrame pushes one frame (header, payload, optional CRC trailer) to
// the socket in a single call. On a TCP connection net.Buffers takes the
// writev fast path, so the whole frame is one syscall with no copy; a
// frame never straddles a partial write boundary of its parts. Generic
// conns (net.Pipe in tests) have no writev path — net.Buffers would
// degrade to one Write per slice — so the parts are coalesced into a
// reusable staging buffer and written once.
//
//cyclolint:hotpath
func (l *link) writeFrame(parts [][]byte) error {
	if l.isTCP {
		bufs := net.Buffers(parts)
		_, err := bufs.WriteTo(l.conn)
		return err
	}
	l.coalesce = l.coalesce[:0]
	for _, p := range parts {
		l.coalesce = append(l.coalesce, p...)
	}
	_, err := l.conn.Write(l.coalesce)
	return err
}

func (l *link) readLoop() {
	var hdr [17]byte
	for {
		if _, err := io.ReadFull(l.conn, hdr[:5]); err != nil {
			l.fail(rdma.Completion{Op: rdma.OpRecv, Err: fmt.Errorf("tcplink: read header: %w", err)})
			return
		}
		kind := hdr[0]
		n := int(binary.BigEndian.Uint32(hdr[1:5]))
		if n > l.maxFrame {
			l.fail(rdma.Completion{Op: rdma.OpRecv, Err: fmt.Errorf("tcplink: frame length %d exceeds limit", n)})
			return
		}
		switch kind {
		case frameSend:
			if !l.readSend(n) {
				return
			}
		case frameWrite, frameWriteImm:
			if !l.readWrite(kind, n, hdr[:]) {
				return
			}
		default:
			l.fail(rdma.Completion{Op: rdma.OpRecv, Err: fmt.Errorf("tcplink: unknown frame type %d", kind)})
			return
		}
	}
}

// readSend handles a two-sided message; reports false on fatal error.
func (l *link) readSend(n int) bool {
	var rb *rdma.Buffer
	// Receiver-not-ready: a frame is on the wire but the application has
	// no posted buffer. Only the slow path opens the stall span.
	select {
	case rb = <-l.recvQ:
	default:
		cs := l.shard.Begin(trace.PhaseCreditStall)
		cs.Arg = int64(n)
		select {
		case <-l.done:
			// Close the stall span on shutdown too, so the trace shows how
			// long the frame waited for a buffer that never arrived.
			l.shard.End(cs)
			return false
		case rb = <-l.recvQ:
		}
		l.shard.End(cs)
	}
	if n > rb.Cap() {
		l.fail(rdma.Completion{Op: rdma.OpRecv, Buf: rb,
			Err: fmt.Errorf("%w: message %d B, buffer %d B", rdma.ErrBufferTooSmall, n, rb.Cap())})
		return false
	}
	if _, err := io.ReadFull(l.conn, rb.Data()[:n]); err != nil {
		l.fail(rdma.Completion{Op: rdma.OpRecv, Buf: rb, Err: fmt.Errorf("tcplink: read payload: %w", err)})
		return false
	}
	if !l.verifyChecksum(rb.Data()[:n]) {
		l.fail(rdma.Completion{Op: rdma.OpRecv, Buf: rb, Err: fmt.Errorf("tcplink: payload checksum mismatch")})
		return false
	}
	if err := rb.SetLen(n); err != nil {
		l.fail(rdma.Completion{Op: rdma.OpRecv, Buf: rb, Err: err})
		return false
	}
	mRxFrames.Inc()
	mRxBytes.Add(int64(n))
	l.finishRecv(rb, n)
	l.complete(rdma.Completion{Op: rdma.OpRecv, Buf: rb})
	return true
}

// verifyChecksum reads and checks the trailing CRC when enabled. A read
// failure or mismatch reports false; the caller fails the link.
func (l *link) verifyChecksum(payload []byte) bool {
	if !l.checksum {
		return true
	}
	var sum [4]byte
	if _, err := io.ReadFull(l.conn, sum[:]); err != nil {
		return false
	}
	if binary.BigEndian.Uint32(sum[:]) != crc32.Checksum(payload, castagnoli) {
		mCRCFailures.Inc()
		return false
	}
	return true
}

// readWrite handles an incoming one-sided write: the payload lands
// directly in the exposed buffer, no receive buffer is consumed, and the
// local CPU is notified only for write-with-immediate. A protection fault
// (bad key, out of bounds) terminates the connection, as on a real RNIC.
func (l *link) readWrite(kind byte, n int, hdr []byte) bool {
	rest := 8
	if kind == frameWriteImm {
		rest = 12
	}
	if _, err := io.ReadFull(l.conn, hdr[5:5+rest]); err != nil {
		l.fail(rdma.Completion{Op: rdma.OpRecv, Err: fmt.Errorf("tcplink: read write header: %w", err)})
		return false
	}
	key := rdma.RemoteKey(binary.BigEndian.Uint32(hdr[5:9]))
	off := int(binary.BigEndian.Uint32(hdr[9:13]))
	var imm uint32
	if kind == frameWriteImm {
		imm = binary.BigEndian.Uint32(hdr[13:17])
	}
	l.mu.Lock()
	target, ok := l.exposed[key]
	l.mu.Unlock()
	if !ok {
		l.fail(rdma.Completion{Op: rdma.OpWrite, Err: fmt.Errorf("%w: key %d", rdma.ErrBadRemoteKey, key)})
		return false
	}
	if off < 0 || off+n > target.Cap() {
		l.fail(rdma.Completion{Op: rdma.OpWrite, Buf: target,
			Err: fmt.Errorf("%w: offset %d + %d B into %d B", rdma.ErrOutOfBounds, off, n, target.Cap())})
		return false
	}
	if _, err := io.ReadFull(l.conn, target.Data()[off:off+n]); err != nil {
		l.fail(rdma.Completion{Op: rdma.OpWrite, Buf: target, Err: fmt.Errorf("tcplink: read write payload: %w", err)})
		return false
	}
	if !l.verifyChecksum(target.Data()[off : off+n]) {
		l.fail(rdma.Completion{Op: rdma.OpWrite, Buf: target, Err: fmt.Errorf("tcplink: write payload checksum mismatch")})
		return false
	}
	mRxFrames.Inc()
	mRxBytes.Add(int64(n))
	if kind == frameWriteImm {
		l.complete(rdma.Completion{Op: rdma.OpWrite, Buf: target, Imm: imm})
	}
	return true
}

// Expose implements rdma.WriteQueuePair.
func (l *link) Expose(b *rdma.Buffer) (rdma.RemoteKey, error) {
	select {
	case <-l.done:
		return 0, rdma.ErrClosed
	default:
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextKey++
	l.exposed[l.nextKey] = b
	return l.nextKey, nil
}

// PostWrite implements rdma.WriteQueuePair.
func (l *link) PostWrite(key rdma.RemoteKey, offset int, src *rdma.Buffer) error {
	return l.post(workReq{kind: rdma.OpWrite, buf: src, key: key, off: offset})
}

// PostWriteImm implements rdma.WriteQueuePair.
func (l *link) PostWriteImm(key rdma.RemoteKey, offset int, src *rdma.Buffer, imm uint32) error {
	return l.post(workReq{kind: rdma.OpWrite, buf: src, key: key, off: offset, imm: imm, hasImm: true})
}

// validate rejects, at post time, work requests the wire format cannot
// carry: the length and offset header fields are 4 bytes, so an
// oversized payload or out-of-range offset would silently wrap and
// corrupt the stream if allowed through. The limit check also mirrors
// the receiver's maxFrame guard, so a frame the peer would kill the
// connection over is refused locally with a typed error instead.
// validate applies the sender-side frame limits before queueing.
//
//cyclolint:hotpath
func (l *link) validate(wr workReq) error {
	if wr.buf.Len() > l.maxFrame {
		mPostRejects.Inc()
		//cyclolint:coldpath rejected post: caller handles the error off the fast path
		return fmt.Errorf("%w: payload %d B, limit %d B", ErrFrameTooLarge, wr.buf.Len(), l.maxFrame)
	}
	if wr.kind == rdma.OpWrite {
		if wr.off < 0 || wr.off > maxWireOffset || int64(wr.off)+int64(wr.buf.Len()) > maxWireOffset {
			mPostRejects.Inc()
			//cyclolint:coldpath rejected post: caller handles the error off the fast path
			return fmt.Errorf("%w: offset %d + %d B payload", ErrOffsetOutOfRange, wr.off, wr.buf.Len())
		}
	}
	return nil
}

// post queues a validated work request, opening its residency span.
//
//cyclolint:hotpath
func (l *link) post(wr workReq) error {
	if err := l.validate(wr); err != nil {
		return err
	}
	select {
	case <-l.done:
		return rdma.ErrClosed
	default:
	}
	if wr.kind == rdma.OpSend {
		wr.pend = l.shard.Begin(trace.PhaseWRSend)
	} else {
		wr.pend = l.shard.Begin(trace.PhaseWRWrite)
	}
	select {
	case <-l.done:
		return rdma.ErrClosed
	case l.sendQ <- wr:
		mSendDepth.Inc()
		return nil
	}
}

// complete delivers one completion to the application's CQ.
//
//cyclolint:hotpath
func (l *link) complete(c rdma.Completion) {
	select {
	case l.cq <- c:
		mCompletions.Inc()
	case <-l.done:
	}
}

// fail reports a fatal link error (once) and tears the connection down so
// the peer loops unblock. The completion queue itself is closed by Close.
func (l *link) fail(c rdma.Completion) {
	l.failOnce.Do(func() {
		select {
		case l.cq <- c:
		default:
			// CQ full during teardown. The completion may carry a
			// consumed receive buffer, so it must not be dropped: park
			// it for Close's flush pass instead.
			l.pendMu.Lock()
			l.pendingFail = append(l.pendingFail, c)
			l.pendMu.Unlock()
		}
		close(l.done)
		// Unblock the other loop's conn reads/writes.
		_ = l.conn.Close()
	})
}

// flush returns every still-posted work request's buffer to the
// application as an ErrFlushed completion (the verbs WR_FLUSH_ERR
// discipline). Called by Close after both loops have exited, so the
// queues are quiescent. Delivery is best-effort non-blocking — the CQ is
// as deep as the post queues combined is shallow in practice — and any
// completion that still cannot be delivered is counted, never silently
// lost.
func (l *link) flush() {
	deliver := func(c rdma.Completion) {
		select {
		case l.cq <- c:
			mFlushed.Inc()
		default:
			mFlushDrops.Inc()
		}
	}
	l.pendMu.Lock()
	parked := l.pendingFail
	l.pendingFail = nil
	l.pendMu.Unlock()
	for _, c := range parked {
		deliver(c)
	}
drainSends:
	for {
		select {
		case wr := <-l.sendQ:
			l.shard.End(wr.pend)
			if wr.batchLen > 0 {
				mSendDepth.Add(-int64(wr.batchLen))
				for _, b := range wr.batchArr[:wr.batchLen] {
					deliver(rdma.Completion{Op: rdma.OpSend, Buf: b, Err: rdma.ErrFlushed})
				}
				continue
			}
			mSendDepth.Dec()
			deliver(rdma.Completion{Op: wr.kind, Buf: wr.buf, Err: rdma.ErrFlushed})
		default:
			break drainSends
		}
	}
	for {
		select {
		case b := <-l.recvQ:
			l.dropRecvStamp(b)
			deliver(rdma.Completion{Op: rdma.OpRecv, Buf: b, Err: rdma.ErrFlushed})
		default:
			return
		}
	}
}

// PostSend implements rdma.QueuePair.
func (l *link) PostSend(b *rdma.Buffer) error {
	return l.post(workReq{kind: rdma.OpSend, buf: b})
}

// PostSendBatch implements rdma.BatchQueuePair: the run is validated and
// handed to writeLoop in maxBatch-sized chunks, one queue operation and
// one writev per chunk. Prefix-atomic: on a validation reject at position
// i, buffers 0..i-1 are posted (and will complete) and the error names i.
//
//cyclolint:hotpath
func (l *link) PostSendBatch(bufs []*rdma.Buffer) error {
	// Validate the whole run first so a reject poisons nothing after it.
	post := len(bufs)
	var verr error
	for i, b := range bufs {
		if err := l.validate(workReq{kind: rdma.OpSend, buf: b}); err != nil {
			//cyclolint:coldpath rejected post: caller handles the error off the fast path
			post, verr = i, fmt.Errorf("tcplink: batch send %d/%d: %w", i, len(bufs), err)
			break
		}
	}
	for off := 0; off < post; off += maxBatch {
		n := post - off
		if n > maxBatch {
			n = maxBatch
		}
		select {
		case <-l.done:
			return rdma.ErrClosed
		default:
		}
		wr := workReq{kind: rdma.OpSend, batchLen: n, pend: l.shard.Begin(trace.PhaseWRSend)}
		copy(wr.batchArr[:n], bufs[off:off+n])
		select {
		case <-l.done:
			l.shard.End(wr.pend)
			return rdma.ErrClosed
		case l.sendQ <- wr:
			mSendDepth.Add(int64(n))
		}
	}
	return verr
}

// PostRecvBatch implements rdma.BatchQueuePair. Receive buffers are
// consumed one at a time by the read loop, so the batch form is a single
// shutdown check plus the per-buffer enqueues — prefix-atomic on error.
//
//cyclolint:hotpath
func (l *link) PostRecvBatch(bufs []*rdma.Buffer) error {
	select {
	case <-l.done:
		return rdma.ErrClosed
	default:
	}
	for i, b := range bufs {
		l.stampRecv(b)
		select {
		case <-l.done:
			l.dropRecvStamp(b)
			//cyclolint:coldpath link teardown: the queue pair is closing
			return fmt.Errorf("tcplink: batch recv %d/%d: %w", i, len(bufs), rdma.ErrClosed)
		case l.recvQ <- b:
		}
	}
	return nil
}

// PollCQ implements rdma.BatchQueuePair: a non-blocking drain of the
// completion channel. A closed CQ reads as empty.
//
//cyclolint:hotpath
func (l *link) PollCQ(dst []rdma.Completion) int {
	n := 0
	for n < len(dst) {
		select {
		case c, ok := <-l.cq:
			if !ok {
				return n
			}
			dst[n] = c
			n++
		default:
			return n
		}
	}
	return n
}

// PostRecv implements rdma.QueuePair.
func (l *link) PostRecv(b *rdma.Buffer) error {
	// Check shutdown first: with a closed done channel and free queue
	// space, a bare select would choose nondeterministically.
	select {
	case <-l.done:
		return rdma.ErrClosed
	default:
	}
	// Stamp the residency span BEFORE the buffer becomes visible to the
	// read loop: once enqueued, finishRecv may run immediately.
	l.stampRecv(b)
	select {
	case <-l.done:
		l.dropRecvStamp(b)
		return rdma.ErrClosed
	case l.recvQ <- b:
		return nil
	}
}

// stampRecv opens the WRRecv residency span for a buffer about to be
// posted.
//
//cyclolint:hotpath
func (l *link) stampRecv(b *rdma.Buffer) {
	if !l.shard.Enabled() {
		return
	}
	pd := l.shard.Begin(trace.PhaseWRRecv)
	l.mu.Lock()
	l.recvPend[b] = pd
	l.mu.Unlock()
}

// dropRecvStamp abandons a stamp whose post failed.
//
//cyclolint:hotpath
func (l *link) dropRecvStamp(b *rdma.Buffer) {
	if !l.shard.Enabled() {
		return
	}
	l.mu.Lock()
	delete(l.recvPend, b)
	l.mu.Unlock()
}

// finishRecv closes the buffer's WRRecv span when a frame lands in it.
//
//cyclolint:hotpath
func (l *link) finishRecv(b *rdma.Buffer, n int) {
	if !l.shard.Enabled() {
		return
	}
	l.mu.Lock()
	pd, ok := l.recvPend[b]
	if ok {
		delete(l.recvPend, b)
	}
	l.mu.Unlock()
	if !ok {
		return
	}
	pd.Arg = int64(n)
	pd.Aux = int64(len(l.cq))
	l.shard.End(pd)
}

// BufferedWire implements rdma.BufferedTransport: a send completion
// means the frame reached the kernel socket buffer, not the peer's
// posted receive buffer, so delivered-at-sender frames can still be in
// flight on the wire.
func (l *link) BufferedWire() bool { return true }

// Completions implements rdma.QueuePair.
func (l *link) Completions() <-chan rdma.Completion { return l.cq }

// Close implements rdma.QueuePair.
func (l *link) Close() error {
	l.closeOnce.Do(func() {
		l.failOnce.Do(func() {
			close(l.done)
			_ = l.conn.Close()
		})
		l.wg.Wait()
		l.flush()
		close(l.cq)
	})
	return nil
}
