// Package rdma defines the RDMA-verbs-shaped transport contract that the
// Data Roundabout is written against, plus the memory-registration machinery
// whose cost profile drives the paper's design (§III).
//
// The paper's three RDMA lessons are encoded directly in this API:
//
//  1. All buffers are registered up front (Device.Register) and reused;
//     registration is expensive, so the ring allocates its buffer pool once
//     ("the cost of registration renders on-demand allocation and
//     registration of memory buffers infeasible", §III-C).
//  2. I/O is fully asynchronous: applications post work requests
//     (PostSend/PostRecv) and later reap Completions from a completion
//     queue, which is what lets the Data Roundabout overlap communication
//     with join processing (§III-B).
//  3. Data is placed directly into the receiver's pre-posted buffer
//     (direct data placement): a transfer involves no intermediate copy in
//     either host's software stack.
//
// Two wire implementations live in subpackages: memlink (in-process,
// genuinely zero-copy) and tcplink (real TCP sockets carrying the same
// semantics). Package kerneltcp implements the same QueuePair interface in
// the style of the paper's software-TCP baseline, with the extra
// user↔kernel staging copies performed for real.
package rdma

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Op identifies the verb a completion refers to.
type Op uint8

// Work request operations.
const (
	// OpSend completes when the local buffer has been handed off to the
	// wire and may be reused.
	OpSend Op = iota + 1
	// OpRecv completes when a message has been placed into the posted
	// receive buffer.
	OpRecv
	// OpWrite completes at the writer when a one-sided RDMA write has
	// been placed into the peer's exposed buffer. At the target, an
	// OpWrite completion is raised only for writes carrying immediate
	// data (PostWriteImm) — plain writes are invisible to the target
	// CPU, which is the entire point of one-sided operations.
	OpWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Completion is one completion-queue entry.
type Completion struct {
	// Op says which verb completed.
	Op Op
	// Buf is the buffer whose work request completed. Ownership returns
	// to the application with the completion. For an OpWrite completion
	// at the target, Buf is the exposed buffer that was written into
	// (which the application never ceded ownership of).
	Buf *Buffer
	// Imm carries the immediate data of a PostWriteImm, at the target.
	Imm uint32
	// Err is non-nil if the work request failed; the queue pair is then
	// unusable.
	Err error
}

// QueuePair is the asynchronous, connection-oriented transport endpoint —
// the shape of an RDMA RC queue pair reduced to the two verbs the Data
// Roundabout needs.
//
// Semantics all implementations must provide (the rdmatest package checks
// them):
//
//   - messages arrive exactly once, in posting order;
//   - a receive completes only into a buffer the application posted
//     (receiver-not-ready senders block rather than drop);
//   - a send completion returns buffer ownership to the application;
//   - after Close, posts fail with ErrClosed and the completion channel is
//     eventually closed;
//   - work requests still posted at Close are flushed: each one's buffer
//     comes back through the completion queue with ErrFlushed before the
//     channel closes, so a fault never strands pool buffers.
type QueuePair interface {
	// PostRecv hands a registered buffer to the transport for the next
	// incoming message.
	PostRecv(b *Buffer) error
	// PostSend transmits b.Bytes() to the peer.
	PostSend(b *Buffer) error
	// Completions returns the completion queue. The channel is closed
	// when the queue pair shuts down.
	Completions() <-chan Completion
	// Close shuts the queue pair down and releases its resources.
	// Close is idempotent.
	Close() error
}

// BatchQueuePair extends QueuePair with the doorbell-batching verbs of
// real RNICs: post a linked list of work requests with one doorbell ring,
// reap a whole completion-queue drain with one poll. The contract is
// specified in DESIGN.md §11; the load-bearing points:
//
//   - Batches preserve order: PostSendBatch(a, b, c) is observably
//     identical to three PostSends back to back — the peer receives a, b,
//     c in order, and each buffer gets its own completion.
//   - Failure is prefix-atomic at post time: if validation rejects buffer
//     i, buffers 0..i-1 are already posted (and will complete), buffers
//     i.. are not posted and remain owned by the caller. The returned
//     error identifies the first rejected request.
//   - Asynchronous failure (link death mid-batch) follows the flush
//     contract: every accepted buffer still returns through the CQ,
//     carrying the wire error or ErrFlushed.
//   - PollCQ never blocks: it moves at most len(dst) already-available
//     completions into dst and returns the count, 0 when the CQ is empty
//     or the queue pair has shut down. It may be interleaved freely with
//     channel receives from Completions(); each completion is delivered
//     exactly once through exactly one of the two.
//
// Implementations that can batch natively (memlink: one queue hand-off
// per batch; tcplink: one writev per batch) do so; the package-level
// PostSendBatch/PostRecvBatch/PollCQ helpers fall back to per-buffer
// verbs for plain QueuePairs (kerneltcp), so callers need not type-switch.
type BatchQueuePair interface {
	QueuePair
	// PostSendBatch transmits each buffer's Bytes() in order with a
	// single doorbell. One OpSend completion is raised per buffer.
	PostSendBatch(bufs []*Buffer) error
	// PostRecvBatch hands several registered buffers to the transport in
	// one call. Buffers fill in posting order.
	PostRecvBatch(bufs []*Buffer) error
	// PollCQ moves up to len(dst) available completions into dst without
	// blocking and returns how many were moved.
	PollCQ(dst []Completion) int
}

// PostSendBatch posts every buffer with one doorbell when qp batches
// natively, else with per-buffer posts. Prefix-atomic on error either way.
func PostSendBatch(qp QueuePair, bufs []*Buffer) error {
	if len(bufs) == 0 {
		return nil
	}
	if bqp, ok := qp.(BatchQueuePair); ok {
		return bqp.PostSendBatch(bufs)
	}
	for i, b := range bufs {
		if err := qp.PostSend(b); err != nil {
			return fmt.Errorf("rdma: batch send %d/%d: %w", i, len(bufs), err)
		}
	}
	return nil
}

// PostRecvBatch posts every receive buffer with one doorbell when qp
// batches natively, else with per-buffer posts.
func PostRecvBatch(qp QueuePair, bufs []*Buffer) error {
	if len(bufs) == 0 {
		return nil
	}
	if bqp, ok := qp.(BatchQueuePair); ok {
		return bqp.PostRecvBatch(bufs)
	}
	for i, b := range bufs {
		if err := qp.PostRecv(b); err != nil {
			return fmt.Errorf("rdma: batch recv %d/%d: %w", i, len(bufs), err)
		}
	}
	return nil
}

// PollCQ drains up to len(dst) available completions from qp without
// blocking, returning how many landed in dst. For plain QueuePairs it
// performs a non-blocking drain of the completion channel; a closed
// channel reads as empty.
//
//cyclolint:hotpath
func PollCQ(qp QueuePair, dst []Completion) int {
	if len(dst) == 0 {
		return 0
	}
	if bqp, ok := qp.(BatchQueuePair); ok {
		return bqp.PollCQ(dst)
	}
	ch := qp.Completions()
	n := 0
	for n < len(dst) {
		select {
		case c, ok := <-ch:
			if !ok {
				return n
			}
			dst[n] = c
			n++
		default:
			return n
		}
	}
	return n
}

// BufferedTransport marks queue pairs whose send completions can precede
// the peer observing the data: a real wire with buffering between the
// endpoints (tcplink's kernel socket buffers). On such a transport,
// closing the receiving endpoint while the sender's endpoint is being
// torn down can discard frames the sender has already counted delivered —
// the receiver must be allowed to drain the wire to EOF first.
// Synchronous-placement transports (memlink, where a send completion
// means the frame is already in the peer's completion queue) leave it
// unimplemented; wrappers forward to the wrapped endpoint.
type BufferedTransport interface {
	// BufferedWire reports whether delivered-at-sender frames can still
	// be in flight toward the receiver.
	BufferedWire() bool
}

// Buffered reports whether qp rides a buffered wire (see
// BufferedTransport). Queue pairs that do not implement the capability
// are synchronous: false.
func Buffered(qp QueuePair) bool {
	b, ok := qp.(BufferedTransport)
	return ok && b.BufferedWire()
}

// ErrClosed is returned by posts on a closed queue pair.
var ErrClosed = errors.New("rdma: queue pair closed")

// ErrFlushed marks completions for work requests that were still posted
// when the queue pair shut down — the software analogue of the verbs
// WR_FLUSH_ERR. Buffer ownership returns to the application with the
// flush completion: a transport must hand every posted buffer back
// through the completion queue before closing it, or the application's
// buffer pool shrinks permanently under faults.
var ErrFlushed = errors.New("rdma: work request flushed on queue pair shutdown")

// ErrBadRemoteKey is reported when a write names an rkey the peer never
// exposed — the software analogue of an RNIC protection fault.
var ErrBadRemoteKey = errors.New("rdma: unknown or revoked remote key")

// ErrOutOfBounds is reported when a write would exceed the exposed
// buffer's registered extent.
var ErrOutOfBounds = errors.New("rdma: write outside the exposed buffer")

// RemoteKey names a buffer the peer has exposed for one-sided writes —
// the steering tag (rkey/STag) of the verbs API.
type RemoteKey uint32

// WriteQueuePair extends QueuePair with one-sided RDMA writes. RDMA-class
// transports (memlink, tcplink) implement it; the kernel-TCP baseline
// cannot — a kernel socket has no remote-memory access — and deliberately
// does not.
type WriteQueuePair interface {
	QueuePair
	// Expose grants the peer write access to b and returns the key to
	// advertise. The application retains ownership of b and is
	// responsible for coordinating access (as with real RDMA).
	Expose(b *Buffer) (RemoteKey, error)
	// PostWrite places src.Bytes() into the peer buffer named by key at
	// the given byte offset. Only the writer observes a completion.
	PostWrite(key RemoteKey, offset int, src *Buffer) error
	// PostWriteImm is PostWrite plus immediate data: the target also
	// receives an OpWrite completion carrying imm — the doorbell that
	// tells its CPU the data has landed.
	PostWriteImm(key RemoteKey, offset int, src *Buffer, imm uint32) error
}

// ErrBufferTooSmall is reported (via a completion error) when an incoming
// message exceeds the posted receive buffer, mirroring the fatal RNR/length
// errors of real RNICs.
var ErrBufferTooSmall = errors.New("rdma: posted receive buffer too small for incoming message")

// CQDepth is the buffered depth of completion channels. Posting more
// outstanding work requests than this without reaping completions is an
// application error on real hardware too.
const CQDepth = 256

// Buffer is a registered memory buffer. Only registered buffers can be
// posted to a queue pair — the compile-time analogue of the RNIC's
// protection checks.
type Buffer struct {
	data []byte
	// n moves with the buffer: exactly one goroutine holds a buffer
	// between post and completion, and every hand-off (queue-pair post,
	// completion channel, free pool) is a channel send that orders the
	// accesses. bufown enforces the single-owner protocol dynamically.
	//
	//cyclolint:sharesafe ownership transfers with the buffer through channel hand-offs
	n   int
	dev *Device
}

// Data exposes the buffer's full registered extent for encoding into.
func (b *Buffer) Data() []byte { return b.data }

// Cap returns the registered size in bytes.
func (b *Buffer) Cap() int { return len(b.data) }

// Len returns the valid payload length.
func (b *Buffer) Len() int { return b.n }

// SetLen declares the first n bytes as the valid payload (before a send, or
// by the transport after a receive).
func (b *Buffer) SetLen(n int) error {
	if n < 0 || n > len(b.data) {
		return fmt.Errorf("rdma: SetLen(%d) outside registered extent %d", n, len(b.data))
	}
	b.n = n
	return nil
}

// Bytes returns the valid payload b.Data()[:b.Len()].
func (b *Buffer) Bytes() []byte { return b.data[:b.n] }

// Device stands in for an opened RNIC plus protection domain: the scope
// within which buffers are registered. It tracks registration statistics so
// experiments can account for the setup cost the paper amortizes away.
type Device struct {
	name string

	mu    sync.Mutex
	stats RegStats
}

// RegStats aggregates memory-registration work on a device.
type RegStats struct {
	// Registrations counts Register calls.
	Registrations int
	// BytesPinned is the total registered (pinned) volume.
	BytesPinned int64
	// ModeledCost estimates the CPU time registration would have cost on
	// the paper's testbed (address translation + pinning, per page).
	ModeledCost time.Duration
}

// Registration cost model: a fixed syscall/verbs overhead plus a per-page
// pinning cost. The constants are in the range measured by the authors'
// earlier RDMA study [11] for iWARP NICs; they matter only for accounting,
// never for correctness.
const (
	regBaseCost    = 30 * time.Microsecond
	regPerPageCost = 350 * time.Nanosecond
	pageSize       = 4096
)

// ModeledRegistrationCost returns the registration cost model's estimate
// for one buffer of the given size, without allocating or registering
// anything — for analytic experiments that sweep registration counts far
// beyond what should be materialized.
func ModeledRegistrationCost(size int) time.Duration {
	if size <= 0 {
		return 0
	}
	pages := (size + pageSize - 1) / pageSize
	return regBaseCost + time.Duration(pages)*regPerPageCost
}

// OpenDevice opens a named virtual RNIC.
func OpenDevice(name string) *Device {
	return &Device{name: name}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Register allocates and registers a buffer of the given size. The zero
// value of the returned buffer's length is 0; use Data/SetLen to fill it.
func (d *Device) Register(size int) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("rdma: register %d bytes on %s", size, d.name)
	}
	pages := (size + pageSize - 1) / pageSize
	d.mu.Lock()
	d.stats.Registrations++
	d.stats.BytesPinned += int64(size)
	d.stats.ModeledCost += regBaseCost + time.Duration(pages)*regPerPageCost
	d.mu.Unlock()
	return &Buffer{data: make([]byte, size), dev: d}, nil
}

// RegisterPool registers count buffers of size bytes each — the statically
// allocated ring of buffers each Data Roundabout node owns (§III-D).
func (d *Device) RegisterPool(count, size int) ([]*Buffer, error) {
	if count <= 0 {
		return nil, fmt.Errorf("rdma: register pool of %d buffers on %s", count, d.name)
	}
	pool := make([]*Buffer, count)
	for i := range pool {
		b, err := d.Register(size)
		if err != nil {
			return nil, err
		}
		pool[i] = b
	}
	return pool, nil
}

// Stats returns a snapshot of the device's registration statistics.
func (d *Device) Stats() RegStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
