package chaoslink

import (
	"errors"
	"testing"
	"time"

	"cyclojoin/internal/rdma"
	"cyclojoin/internal/rdma/memlink"
	"cyclojoin/internal/rdma/rdmatest"
	"cyclojoin/internal/testutil"
)

// wrappedPair builds a memlink pair with the scenario in front of the
// sending side and registers cleanup for both ends.
func wrappedPair(t *testing.T, sc Scenario) (rdma.QueuePair, rdma.QueuePair) {
	t.Helper()
	a, b := memlink.Pair()
	src := Wrap(a, Link{From: 0, To: 1}, sc)
	t.Cleanup(func() {
		_ = src.Close()
		_ = b.Close()
	})
	return src, b
}

func bufs(t *testing.T, count, size int) []*rdma.Buffer {
	t.Helper()
	pool, err := rdma.OpenDevice("chaos-test").RegisterPool(count, size)
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// TestConformancePassThrough: an inactive scenario must be invisible — the
// wrapped link honors the full queue-pair contract.
func TestConformancePassThrough(t *testing.T) {
	rdmatest.Run(t, func(t *testing.T) (rdma.QueuePair, rdma.QueuePair) {
		a, b := memlink.Pair()
		return Wrap(a, Link{From: 0, To: 1}, Scenario{}), b
	})
}

// TestConformanceJittered: delay and jitter without Reorder must preserve
// every queue-pair guarantee, in-order delivery included — the hold queue
// is FIFO regardless of due times.
func TestConformanceJittered(t *testing.T) {
	rdmatest.Run(t, func(t *testing.T) (rdma.QueuePair, rdma.QueuePair) {
		a, b := memlink.Pair()
		sc := Scenario{Seed: 1, Delay: 200 * time.Microsecond, Jitter: 300 * time.Microsecond}
		return Wrap(a, Link{From: 0, To: 1}, sc), b
	})
}

// TestFailFrameDropsExactly: frame FailFrame-1 is delivered, frame
// FailFrame comes back as an error completion carrying its buffer, and
// every later post is refused inline.
func TestFailFrameDropsExactly(t *testing.T) {
	testutil.CheckNoLeaks(t)
	src, dst := wrappedPair(t, Scenario{FailFrame: 2})
	p := bufs(t, 4, 64)

	if err := dst.PostRecv(p[0]); err != nil {
		t.Fatal(err)
	}
	copy(p[1].Data(), "ok")
	if err := p[1].SetLen(2); err != nil {
		t.Fatal(err)
	}
	if err := src.PostSend(p[1]); err != nil {
		t.Fatal(err)
	}
	waitCompletion(t, dst, func(c rdma.Completion) bool {
		return c.Op == rdma.OpRecv && c.Err == nil && c.Buf == p[0]
	}, "first frame delivered")

	copy(p[2].Data(), "dropped")
	if err := p[2].SetLen(7); err != nil {
		t.Fatal(err)
	}
	rejected := mRejects.Value()
	if err := src.PostSend(p[2]); err != nil {
		t.Fatalf("the dropped frame's post must succeed (the fault arrives as a completion): %v", err)
	}
	waitCompletion(t, src, func(c rdma.Completion) bool {
		return c.Err != nil && errors.Is(c.Err, ErrInjected) && c.Buf == p[2]
	}, "injected error completion for the dropped frame")

	if err := src.PostSend(p[3]); !errors.Is(err, ErrInjected) {
		t.Fatalf("post after link failure = %v, want ErrInjected", err)
	}
	if got := mRejects.Value() - rejected; got < 1 {
		t.Errorf("chaoslink_rejected_posts_total delta = %d, want >= 1", got)
	}
}

// TestDropDeterminism: two fresh links with identical scenarios fail on
// the same frame ordinal — a recorded seed replays the same schedule.
func TestDropDeterminism(t *testing.T) {
	testutil.CheckNoLeaks(t)
	ordinal := func() int {
		src, _ := wrappedPair(t, Scenario{Seed: 99, DropProb: 0.2})
		p := bufs(t, 64, 16)
		for i, b := range p {
			if err := b.SetLen(1); err != nil {
				t.Fatal(err)
			}
			if err := src.PostSend(b); err != nil {
				return i // i accepted posts before this rejection; drop was ordinal i
			}
		}
		t.Fatal("no drop within 64 frames at DropProb 0.2")
		return -1
	}
	first, second := ordinal(), ordinal()
	if first != second {
		t.Fatalf("same seed produced different drop ordinals: %d vs %d", first, second)
	}
}

// TestCorruptImmediate: the poisoned doorbell reaches the target with an
// impossible length while the sender observes an injected error completion
// for the same work request.
func TestCorruptImmediate(t *testing.T) {
	testutil.CheckNoLeaks(t)
	src, dst := wrappedPair(t, Scenario{FailFrame: 1, CorruptImm: true})
	w, ok := src.(rdma.WriteQueuePair)
	if !ok {
		t.Fatalf("%T lost the write interface of its inner link", src)
	}
	wd := dst.(rdma.WriteQueuePair)
	p := bufs(t, 2, 64)

	key, err := wd.Expose(p[0])
	if err != nil {
		t.Fatal(err)
	}
	copy(p[1].Data(), "doorbell")
	if err := p[1].SetLen(8); err != nil {
		t.Fatal(err)
	}
	if err := w.PostWriteImm(key, 0, p[1], 8); err != nil {
		t.Fatal(err)
	}
	waitCompletion(t, dst, func(c rdma.Completion) bool {
		return c.Op == rdma.OpWrite && c.Imm == ^uint32(0)
	}, "poisoned doorbell at the target")
	waitCompletion(t, src, func(c rdma.Completion) bool {
		return c.Err != nil && errors.Is(c.Err, ErrInjected) && c.Buf == p[1]
	}, "injected error completion for the poisoned write")

	if err := w.PostWriteImm(key, 0, p[1], 8); !errors.Is(err, ErrInjected) {
		t.Fatalf("post after corrupt-imm fault = %v, want ErrInjected", err)
	}
}

// TestDelayHoldsFrames: a frame spends at least Delay in the hold queue
// before it reaches the receiver.
func TestDelayHoldsFrames(t *testing.T) {
	testutil.CheckNoLeaks(t)
	const delay = 30 * time.Millisecond
	src, dst := wrappedPair(t, Scenario{Delay: delay})
	p := bufs(t, 2, 16)

	if err := dst.PostRecv(p[0]); err != nil {
		t.Fatal(err)
	}
	if err := p[1].SetLen(1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := src.PostSend(p[1]); err != nil {
		t.Fatal(err)
	}
	waitCompletion(t, dst, func(c rdma.Completion) bool {
		return c.Op == rdma.OpRecv && c.Err == nil
	}, "delayed frame")
	if held := time.Since(start); held < delay-5*time.Millisecond {
		t.Errorf("frame arrived after %v, want >= %v", held, delay)
	}
}

// TestPaceSpacesFrames: consecutive releases are at least Pace apart, so a
// burst of three frames takes two pace intervals end to end.
func TestPaceSpacesFrames(t *testing.T) {
	testutil.CheckNoLeaks(t)
	const pace = 15 * time.Millisecond
	src, dst := wrappedPair(t, Scenario{Pace: pace})
	p := bufs(t, 6, 16)

	for i := 0; i < 3; i++ {
		if err := dst.PostRecv(p[i]); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	for i := 3; i < 6; i++ {
		if err := p[i].SetLen(1); err != nil {
			t.Fatal(err)
		}
		if err := src.PostSend(p[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		waitCompletion(t, dst, func(c rdma.Completion) bool {
			return c.Op == rdma.OpRecv && c.Err == nil
		}, "paced frame")
	}
	if elapsed := time.Since(start); elapsed < 2*pace-5*time.Millisecond {
		t.Errorf("three paced frames arrived in %v, want >= %v", elapsed, 2*pace)
	}
}

// TestReorderAllowsOvertake: with Reorder, jittered doorbells are released
// by due time, so the arrival order differs from the post order. The
// schedule is seeded, so the inversion this asserts is reproducible.
func TestReorderAllowsOvertake(t *testing.T) {
	testutil.CheckNoLeaks(t)
	sc := Scenario{Seed: 3, Jitter: 40 * time.Millisecond, Reorder: true}
	src, dst := wrappedPair(t, sc)
	w := src.(rdma.WriteQueuePair)
	wd := dst.(rdma.WriteQueuePair)
	const frames = 8
	p := bufs(t, frames+1, 64)

	key, err := wd.Expose(p[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= frames; i++ {
		if err := p[i].SetLen(4); err != nil {
			t.Fatal(err)
		}
		if err := w.PostWriteImm(key, 0, p[i], uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	var arrived []uint32
	for len(arrived) < frames {
		select {
		case c, ok := <-dst.Completions():
			if !ok {
				t.Fatal("target CQ closed early")
			}
			if c.Op == rdma.OpWrite && c.Err == nil {
				arrived = append(arrived, c.Imm)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out; arrivals so far: %v", arrived)
		}
	}
	inverted := false
	for i := 1; i < len(arrived); i++ {
		if arrived[i] < arrived[i-1] {
			inverted = true
		}
	}
	if !inverted {
		t.Errorf("no doorbell overtook another under Reorder: arrivals %v", arrived)
	}
}

// TestCloseFlushesHeldFrames: buffers parked in the hold queue at Close
// must still return through the CQ — the wrapper accepted the posts, so
// the flush contract is its to keep.
func TestCloseFlushesHeldFrames(t *testing.T) {
	testutil.CheckNoLeaks(t)
	a, b := memlink.Pair()
	src := Wrap(a, Link{From: 0, To: 1}, Scenario{Delay: time.Hour})
	defer func() { _ = b.Close() }()
	p := bufs(t, 2, 16)
	for _, buf := range p {
		if err := buf.SetLen(1); err != nil {
			t.Fatal(err)
		}
		if err := src.PostSend(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	flushed := map[*rdma.Buffer]bool{}
	for c := range src.Completions() {
		if errors.Is(c.Err, rdma.ErrFlushed) {
			flushed[c.Buf] = true
		}
	}
	for _, buf := range p {
		if !flushed[buf] {
			t.Errorf("held buffer did not flush through the CQ on Close")
		}
	}
}

// TestPlanTakeSchedules exercises the dial bookkeeping: fault windows,
// partitions, derived per-dial seeds, clean links.
func TestPlanTakeSchedules(t *testing.T) {
	l := Link{From: 0, To: 1}

	t.Run("default one faulty dial", func(t *testing.T) {
		p := &Plan{PerLink: map[Link]*Scenario{l: {FailFrame: 1}}}
		if sc, dial := p.take(l); sc == nil || dial != 1 {
			t.Fatalf("first dial = (%v, %d), want faulty dial 1", sc, dial)
		}
		if sc, _ := p.take(l); sc != nil {
			t.Fatalf("second dial still faulty: %+v", sc)
		}
		if got := p.Dials(l); got != 2 {
			t.Fatalf("Dials = %d, want 2 (clean re-dials still count)", got)
		}
	})

	t.Run("fault window", func(t *testing.T) {
		p := &Plan{PerLink: map[Link]*Scenario{l: {FailFrame: 1}}, FaultDials: 2}
		for dial := 1; dial <= 2; dial++ {
			if sc, _ := p.take(l); sc == nil {
				t.Fatalf("dial %d came up clean inside the fault window", dial)
			}
		}
		if sc, _ := p.take(l); sc != nil {
			t.Fatal("dial 3 still faulty outside the fault window")
		}
	})

	t.Run("forever faulty", func(t *testing.T) {
		p := &Plan{PerLink: map[Link]*Scenario{l: {FailFrame: 1}}, FaultDials: -1}
		var seeds []uint64
		for dial := 1; dial <= 3; dial++ {
			sc, _ := p.take(l)
			if sc == nil {
				t.Fatalf("dial %d came up clean with FaultDials < 0", dial)
			}
			seeds = append(seeds, sc.Seed)
		}
		if seeds[0] == seeds[1] || seeds[1] == seeds[2] {
			t.Fatalf("re-dials replayed the same seed: %v", seeds)
		}
	})

	t.Run("partition keeps its scenario", func(t *testing.T) {
		p := &Plan{PerLink: map[Link]*Scenario{l: {FailFrame: 1, RefuseRedials: true}}}
		p.take(l)
		if sc, dial := p.take(l); sc == nil || !sc.RefuseRedials || dial != 2 {
			t.Fatalf("re-dial of a partitioned link = (%+v, %d)", sc, dial)
		}
	})

	t.Run("clean link", func(t *testing.T) {
		p := &Plan{PerLink: map[Link]*Scenario{l: {FailFrame: 1}}}
		other := Link{From: 1, To: 2}
		if sc, _ := p.take(other); sc != nil {
			t.Fatalf("unscheduled link got a scenario: %+v", sc)
		}
		if got := p.Dials(other); got != 0 {
			t.Fatalf("clean links must not be dial-counted, got %d", got)
		}
	})
}

// TestPlanWrapFactory: clean links pass through the inner factory
// untouched; faulty links get a wrapper; partitioned re-dials are refused.
func TestPlanWrapFactory(t *testing.T) {
	testutil.CheckNoLeaks(t)
	var lastSrc rdma.QueuePair
	inner := func(from, to int) (rdma.QueuePair, rdma.QueuePair, error) {
		a, b := memlink.Pair()
		lastSrc = a
		t.Cleanup(func() {
			_ = a.Close()
			_ = b.Close()
		})
		return a, b, nil
	}
	faulty := Link{From: 0, To: 1}
	plan := &Plan{PerLink: map[Link]*Scenario{faulty: {FailFrame: 1, RefuseRedials: true}}}
	factory := plan.Wrap(inner)

	src, _, err := factory(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if src != lastSrc {
		t.Error("clean link did not pass through the inner factory untouched")
	}
	src, _, err = factory(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if src == lastSrc {
		t.Error("faulty link was not wrapped")
	}
	t.Cleanup(func() { _ = src.Close() })

	if _, _, err := factory(0, 1); !errors.Is(err, ErrPartitioned) {
		t.Errorf("re-dial of partitioned link = %v, want ErrPartitioned", err)
	}
	if got := plan.Dials(faulty); got != 2 {
		t.Errorf("Dials = %d, want 2", got)
	}
}

// waitCompletion drains qp's CQ until pred matches, failing the test on
// close or timeout.
func waitCompletion(t *testing.T, qp rdma.QueuePair, pred func(rdma.Completion) bool, what string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case c, ok := <-qp.Completions():
			if !ok {
				t.Fatalf("CQ closed while waiting for %s", what)
			}
			if pred(c) {
				return
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}
