package chaoslink

import (
	"fmt"
	"sync"

	"cyclojoin/internal/rdma"
)

// Plan maps a whole ring's links to fault scenarios and tracks how often
// each link has been dialed, so a schedule can distinguish the first
// (faulty) link instance from the re-dial that recovery performs: a
// transient fault heals on re-dial, a partition (RefuseRedials) does not.
//
// A Plan is safe for concurrent use; ring recovery re-dials links from
// its own goroutine.
type Plan struct {
	// Default applies to links with no PerLink entry; nil injects nothing.
	Default *Scenario
	// PerLink overrides Default for specific links.
	PerLink map[Link]*Scenario
	// FaultDials is how many dials of a faulty link receive its scenario
	// before the link comes up clean. 0 means 1 (fault the first dial,
	// heal on re-dial); negative means every dial stays faulty.
	FaultDials int

	mu    sync.Mutex
	dials map[Link]int
}

// linkFactory matches ring.LinkFactory structurally, so chaoslink wraps
// any transport's factory without importing the ring package.
type linkFactory func(from, to int) (src, dst rdma.QueuePair, err error)

// Wrap decorates an inner link factory (ring.MemLinks, ring.TCPLinks(...))
// so every faulted link's sending side goes through the plan's schedule.
// Non-faulted links pass through untouched — chaoslink costs nothing on
// links it leaves alone.
func (p *Plan) Wrap(inner func(from, to int) (src, dst rdma.QueuePair, err error)) func(from, to int) (src, dst rdma.QueuePair, err error) {
	return linkFactory(func(from, to int) (rdma.QueuePair, rdma.QueuePair, error) {
		l := Link{From: from, To: to}
		sc, dial := p.take(l)
		if sc == nil {
			return inner(from, to)
		}
		if dial > 1 && sc.RefuseRedials {
			mRefusals.Inc()
			return nil, nil, fmt.Errorf("chaoslink %s: dial %d: %w", l, dial, ErrPartitioned)
		}
		src, dst, err := inner(from, to)
		if err != nil {
			return nil, nil, err
		}
		return Wrap(src, l, *sc), dst, nil
	})
}

// take resolves the scenario for the next dial of l and returns it along
// with the 1-based dial number. It returns a nil scenario when this dial
// comes up clean.
func (p *Plan) take(l Link) (*Scenario, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	sc := p.PerLink[l]
	if sc == nil {
		sc = p.Default
	}
	if sc == nil || !sc.active() && !sc.RefuseRedials {
		return nil, 0
	}
	if p.dials == nil {
		p.dials = make(map[Link]int)
	}
	p.dials[l]++
	dial := p.dials[l]
	limit := p.FaultDials
	if limit == 0 {
		limit = 1
	}
	if limit > 0 && dial > limit && !sc.RefuseRedials {
		return nil, 0
	}
	// Derive a per-dial seed so a re-dialed faulty link replays a fresh —
	// but still deterministic — schedule.
	derived := *sc
	derived.Seed = sc.Seed + uint64(dial-1)*0x9e3779b97f4a7c15
	return &derived, dial
}

// Dials reports how many times the plan has seen l dialed — tests assert
// recovery actually re-dialed.
func (p *Plan) Dials(l Link) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dials[l]
}
