// Package chaoslink is a fault-injecting rdma.QueuePair wrapper: it sits
// between the ring and any real transport (tcplink, memlink) and delivers
// the failure scenarios internal/simnet only models — frame drops, extra
// latency, reordering of write-mode doorbells, link partitions, slow-node
// pacing, corrupted doorbell immediates — deterministically, from a seeded
// schedule.
//
// The fault model follows RDMA reliable-connection semantics: a reliable
// transport that loses a frame does not deliver it late or out of order —
// after exhausting hardware retries the work request completes with an
// error and the queue pair transitions to an unusable error state. A
// chaoslink "drop" therefore never silently loses data: the frame is not
// delivered, the sender observes an error completion for exactly that work
// request (the buffer — and the staged frame inside it — returns to the
// sender with the completion), and every later post is refused. That is
// the contract the ring's retry/resume machinery (ring.Recovery) is built
// against: the sender's retained frame is re-routed over a re-dialed link,
// so a revolution resumes at the last completed hop instead of starting
// over.
//
// Faults are injected on the sending side of a link only; the receiving
// side observes them the way a real peer would (a torn connection, a
// poisoned doorbell, silence). Every injected fault is counted in
// internal/metrics and recorded as a flight-recorder span on the link's
// chaos track, so cyclotrace can lay the injected outage and the ring's
// recovery side by side on one timeline.
package chaoslink

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cyclojoin/internal/metrics"
	"cyclojoin/internal/rdma"
	"cyclojoin/internal/trace"
)

// ErrInjected marks failures manufactured by a chaoslink schedule, so
// tests can tell an injected fault from a genuine transport error.
var ErrInjected = errors.New("chaoslink: injected link failure")

// ErrPartitioned is returned by a Plan's factory for re-dials into a
// partitioned link — the peer is unreachable, as a dead machine would be.
var ErrPartitioned = errors.New("chaoslink: link partitioned")

var (
	mDrops    = metrics.Default().Counter("chaoslink_faults_total", "injected link faults", "kind", "drop")
	mCorrupts = metrics.Default().Counter("chaoslink_faults_total", "injected link faults", "kind", "corrupt_imm")
	mDelays   = metrics.Default().Counter("chaoslink_faults_total", "injected link faults", "kind", "delay")
	mRefusals = metrics.Default().Counter("chaoslink_faults_total", "injected link faults", "kind", "refuse_dial")
	mRejects  = metrics.Default().Counter("chaoslink_rejected_posts_total", "posts refused because the link was already failed")
	mHoldNs   = metrics.Default().Histogram("chaoslink_hold_ns", "injected per-frame delay", metrics.ExponentialBounds(1<<10, 4, 12))
)

// linkFaults tallies one link's injected faults across every dial (a
// scenario wraps a fresh qp per dial; this table persists), so live health
// surfaces (cyclotop, /health/live) can show which link the chaos schedule
// is hitting without scraping Prometheus text.
type linkFaults struct {
	drops, corrupts, delays atomic.Int64
}

var (
	faultMu  sync.Mutex
	faultTab = make(map[Link]*linkFaults)
)

func faultsFor(link Link) *linkFaults {
	faultMu.Lock()
	defer faultMu.Unlock()
	lf := faultTab[link]
	if lf == nil {
		lf = &linkFaults{}
		faultTab[link] = lf
	}
	return lf
}

// FaultCount is one link's cumulative injected-fault tally.
type FaultCount struct {
	Link                    Link
	Drops, Corrupts, Delays int64
}

// Total sums every fault kind.
func (f FaultCount) Total() int64 { return f.Drops + f.Corrupts + f.Delays }

// SnapshotFaults returns the per-link cumulative fault counts, sorted by
// (From, To). Links that have injected nothing yet are included from the
// moment they are wrapped.
func SnapshotFaults() []FaultCount {
	faultMu.Lock()
	defer faultMu.Unlock()
	out := make([]FaultCount, 0, len(faultTab))
	for link, lf := range faultTab {
		out = append(out, FaultCount{
			Link:     link,
			Drops:    lf.drops.Load(),
			Corrupts: lf.corrupts.Load(),
			Delays:   lf.delays.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Link.From != out[j].Link.From {
			return out[i].Link.From < out[j].Link.From
		}
		return out[i].Link.To < out[j].Link.To
	})
	return out
}

// Link names one directed ring link, sender → receiver.
type Link struct {
	From, To int
}

// String renders the link for error messages and trace labels.
func (l Link) String() string { return fmt.Sprintf("%d→%d", l.From, l.To) }

// Scenario is the deterministic fault schedule for one link instance
// (one dial). The zero value injects nothing.
type Scenario struct {
	// Seed drives every probabilistic choice (DropProb, Jitter). Two
	// links with equal scenarios and seeds inject identical schedules.
	Seed uint64
	// FailFrame is the 1-based ordinal of the outbound frame on which
	// the link fails. The frame is not delivered; the sender observes an
	// error completion carrying the frame's buffer and the link becomes
	// unusable (reliable-connection error-state semantics). 0 disables.
	FailFrame int
	// DropProb additionally fails each frame with this probability.
	DropProb float64
	// CorruptImm changes the FailFrame fault: instead of dropping the
	// frame, its write-with-immediate doorbell is poisoned (the
	// immediate is overwritten with an impossible length). The receiver
	// gets a corrupt doorbell; the sender still observes an error
	// completion for the work request. Meaningful only for write-mode
	// traffic.
	CorruptImm bool
	// Delay holds every frame back for this long before it reaches the
	// wire.
	Delay time.Duration
	// Jitter adds a seeded random hold in [0, Jitter) per frame.
	Jitter time.Duration
	// Pace enforces a minimum spacing between consecutive frame
	// releases — a slow node's egress.
	Pace time.Duration
	// Reorder lets delayed frames overtake each other (release ordered
	// by due time rather than post order). Safe only for write-mode
	// doorbells, where each frame lands in its own exposed buffer; the
	// wrapper ignores it for two-sided sends, whose in-order delivery
	// the receive-buffer matching depends on.
	Reorder bool
	// RefuseRedials makes a Plan refuse every re-dial of this link with
	// ErrPartitioned — a partition rather than a transient fault.
	RefuseRedials bool
}

// active reports whether the scenario injects anything at all.
func (s Scenario) active() bool {
	return s.FailFrame > 0 || s.DropProb > 0 || s.Delay > 0 || s.Jitter > 0 || s.Pace > 0
}

// delayed reports whether frames travel through the hold queue.
func (s Scenario) delayed() bool { return s.Delay > 0 || s.Jitter > 0 || s.Pace > 0 }

// prng is splitmix64: tiny, seedable, and stable across Go releases, so a
// recorded failing seed reproduces the same schedule forever.
type prng uint64

func (p *prng) next() uint64 {
	*p += 0x9e3779b97f4a7c15
	z := uint64(*p)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0,1).
func (p *prng) float() float64 { return float64(p.next()>>11) / (1 << 53) }

// heldWR is one frame parked in the hold queue.
type heldWR struct {
	due  time.Time
	post func() error
	op   rdma.Op
	buf  *rdma.Buffer
	pend trace.Pending
}

// qp wraps the sending side of a queue pair with a fault schedule.
type qp struct {
	inner rdma.QueuePair
	// winner is inner's write interface; nil when inner is two-sided
	// only (then the wrapper is too).
	winner rdma.WriteQueuePair
	link   Link
	sc     Scenario
	shard  *trace.Shard
	// lf is the link's persistent fault tally; the m* counters are the
	// same tallies as Prometheus series labeled by kind and link.
	lf                               *linkFaults
	mLinkDrop, mLinkCorr, mLinkDelay *metrics.Counter

	cq chan rdma.Completion
	// holdQ feeds the delayer goroutine; nil when the scenario has no
	// delay faults, in which case posts forward inline.
	holdQ chan heldWR

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	mu      sync.Mutex
	rng     prng
	ordinal int
	failed  bool
	// lastRelease tracks pacing: a frame may not be released earlier
	// than lastRelease+Pace.
	lastRelease time.Time
	// poisoned marks buffers whose success completion must be converted
	// into an injected failure (corrupt-imm frames the inner transport
	// happily delivered).
	poisoned map[*rdma.Buffer]bool
}

// writeQP adds the one-sided verbs when the inner transport has them.
type writeQP struct{ *qp }

var (
	_ rdma.QueuePair      = (*qp)(nil)
	_ rdma.BatchQueuePair = (*qp)(nil)
	_ rdma.WriteQueuePair = (*writeQP)(nil)
	_ rdma.BatchQueuePair = (*writeQP)(nil)
)

// Wrap puts a fault schedule in front of inner's sending side. The
// returned queue pair implements rdma.WriteQueuePair whenever inner does.
// The wrapper owns inner and closes it on Close.
func Wrap(inner rdma.QueuePair, link Link, sc Scenario) rdma.QueuePair {
	q := &qp{
		inner:      inner,
		link:       link,
		sc:         sc,
		rng:        prng(sc.Seed),
		cq:         make(chan rdma.Completion, rdma.CQDepth+16),
		done:       make(chan struct{}),
		shard:      trace.Flight().Shard(trace.NodeTransport, "chaos/"+link.String()),
		lf:         faultsFor(link),
		mLinkDrop:  metrics.Default().Counter("chaoslink_link_faults_total", "injected faults per directed link", "kind", "drop", "link", link.String()),
		mLinkCorr:  metrics.Default().Counter("chaoslink_link_faults_total", "injected faults per directed link", "kind", "corrupt_imm", "link", link.String()),
		mLinkDelay: metrics.Default().Counter("chaoslink_link_faults_total", "injected faults per directed link", "kind", "delay", "link", link.String()),
	}
	q.winner, _ = inner.(rdma.WriteQueuePair)
	q.wg.Add(1)
	go func() {
		defer q.wg.Done()
		q.pump()
	}()
	if sc.delayed() {
		q.holdQ = make(chan heldWR, rdma.CQDepth)
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			q.delayer()
		}()
	}
	if q.winner != nil {
		return &writeQP{q}
	}
	return q
}

// pump forwards inner completions to the wrapper CQ, converting the
// completions of poisoned work requests into injected failures.
//
// The pump must never abandon completions still queued in the inner CQ —
// the ring's retained-frame accounting depends on every success completion
// reaching the reaper's drain pass, even when the wrapper is being closed
// because the peer reported the fault first. The loop therefore runs until
// the inner CQ closes, which the flush contract guarantees: Close tears
// down the inner link before waiting for the pump, and a torn-down link
// flushes every posted work request back through its CQ and closes it. The
// forward cannot block indefinitely either: the wrapper CQ has more slack
// than the inner CQ can hold, and the consumer drains it to close.
func (q *qp) pump() {
	for c := range q.inner.Completions() {
		if c.Err == nil && c.Buf != nil {
			q.mu.Lock()
			if q.poisoned[c.Buf] {
				delete(q.poisoned, c.Buf)
				c.Err = fmt.Errorf("chaoslink %s: corrupted doorbell immediate: %w", q.link, ErrInjected)
			}
			q.mu.Unlock()
		}
		q.cq <- c
	}
}

// delayer releases held frames at their due times. Without Reorder the
// queue is FIFO (due times are monotonic anyway unless Jitter is set);
// with Reorder the earliest-due frame goes first, so jittered doorbells
// overtake each other.
func (q *qp) delayer() {
	var held []heldWR
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		var fire <-chan time.Time
		if len(held) > 0 {
			d := time.Until(held[q.nextHeld(held)].due)
			if d <= 0 {
				q.release(&held)
				continue
			}
			timer.Reset(d)
			fire = timer.C
		}
		select {
		case <-q.done:
			// Frames still held at shutdown never reach the wire, but the
			// wrapper accepted their posts, so the flush contract is its
			// to keep: every buffer returns through the CQ as flushed.
			// Drain holdQ first — a post may have parked there without
			// reaching this loop yet.
			for drained := false; !drained; {
				select {
				case h := <-q.holdQ:
					held = append(held, h)
				default:
					drained = true
				}
			}
			for _, h := range held {
				q.shard.End(h.pend)
				q.cq <- rdma.Completion{Op: h.op, Buf: h.buf, Err: rdma.ErrFlushed}
			}
			return
		case h := <-q.holdQ:
			held = append(held, h)
		case <-fire:
			q.release(&held)
			continue
		}
		if fire != nil && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}
}

// nextHeld picks the index of the frame to release next.
func (q *qp) nextHeld(held []heldWR) int {
	if !q.sc.Reorder {
		return 0
	}
	best := 0
	for i, h := range held {
		if h.due.Before(held[best].due) {
			best = i
		}
	}
	return best
}

// release forwards the next due frame to the inner transport.
func (q *qp) release(held *[]heldWR) {
	i := q.nextHeld(*held)
	h := (*held)[i]
	*held = append((*held)[:i], (*held)[i+1:]...)
	q.shard.End(h.pend)
	if err := h.post(); err != nil {
		// The inner link refused the delayed post (closed underneath);
		// surface it as this work request's completion so the buffer is
		// handed back.
		select {
		case q.cq <- rdma.Completion{Op: h.op, Buf: h.buf, Err: err}:
		case <-q.done:
		}
	}
}

// submit runs one outbound work request through the fault schedule.
// isImm distinguishes write-with-immediate (the only frame kind
// CorruptImm applies to); forward posts the unmodified request and
// corrupt posts it with a poisoned immediate.
func (q *qp) submit(op rdma.Op, buf *rdma.Buffer, isImm bool, forward, corrupt func() error) error {
	q.mu.Lock()
	if q.failed {
		q.mu.Unlock()
		mRejects.Inc()
		return fmt.Errorf("chaoslink %s: %w", q.link, ErrInjected)
	}
	q.ordinal++
	o := q.ordinal
	fail := o == q.sc.FailFrame || (q.sc.DropProb > 0 && q.rng.float() < q.sc.DropProb)
	poison := fail && isImm && q.sc.CorruptImm && corrupt != nil
	var hold time.Duration
	if !fail && q.sc.delayed() {
		hold = q.sc.Delay
		if q.sc.Jitter > 0 {
			hold += time.Duration(q.rng.float() * float64(q.sc.Jitter))
		}
		due := time.Now().Add(hold)
		if q.sc.Pace > 0 {
			if paced := q.lastRelease.Add(q.sc.Pace); due.Before(paced) {
				due = paced
			}
		}
		q.lastRelease = due
		hold = time.Until(due)
	}
	if fail {
		q.failed = true
		if poison {
			if q.poisoned == nil {
				q.poisoned = make(map[*rdma.Buffer]bool, 1)
			}
			q.poisoned[buf] = true
		}
	}
	q.mu.Unlock()

	switch {
	case poison:
		// Deliver the frame with a poisoned doorbell: the receiver sees
		// an impossible length, the sender an error completion (via the
		// pump) for a frame it must re-route.
		mCorrupts.Inc()
		q.mLinkCorr.Inc()
		q.lf.corrupts.Add(1)
		q.shard.Point(trace.PhaseFault, -1, -1, int64(o))
		return corrupt()
	case fail:
		// RC error-state drop: the frame never reaches the wire, the
		// work request completes with an error that returns the buffer,
		// and the inner link is torn down so the peer notices too.
		mDrops.Inc()
		q.mLinkDrop.Inc()
		q.lf.drops.Add(1)
		q.shard.Point(trace.PhaseFault, -1, -1, int64(o))
		err := fmt.Errorf("chaoslink %s: dropped frame %d: %w", q.link, o, ErrInjected)
		select {
		case q.cq <- rdma.Completion{Op: op, Buf: buf, Err: err}:
		case <-q.done:
		}
		_ = q.inner.Close()
		return nil
	case q.holdQ != nil:
		// Refuse the post once the wrapper is closing — the bare select
		// below would otherwise pick the (buffered) hold queue at random
		// even with done already closed.
		select {
		case <-q.done:
			return rdma.ErrClosed
		default:
		}
		mDelays.Inc()
		q.mLinkDelay.Inc()
		q.lf.delays.Add(1)
		mHoldNs.Observe(hold.Nanoseconds())
		pend := q.shard.Begin(trace.PhaseFault)
		pend.Arg = hold.Nanoseconds()
		select {
		case q.holdQ <- heldWR{due: time.Now().Add(hold), post: forward, op: op, buf: buf, pend: pend}:
			return nil
		case <-q.done:
			return rdma.ErrClosed
		}
	default:
		return forward()
	}
}

// PostSend implements rdma.QueuePair.
func (q *qp) PostSend(b *rdma.Buffer) error {
	return q.submit(rdma.OpSend, b, false, func() error { return q.inner.PostSend(b) }, nil)
}

// PostRecv implements rdma.QueuePair. Receives are posted straight
// through: faults are injected on the sending side only.
func (q *qp) PostRecv(b *rdma.Buffer) error { return q.inner.PostRecv(b) }

// PostSendBatch implements rdma.BatchQueuePair by unrolling the batch
// through the per-frame fault schedule: a batched doorbell must not let
// frames slip past the ordinal/drop bookkeeping, so under chaos a batch
// deliberately degrades to per-frame submits (correctness tier, not perf
// tier). Prefix-atomic like the native implementations: frames before the
// first refused post were submitted and will complete; later ones were not.
func (q *qp) PostSendBatch(bufs []*rdma.Buffer) error {
	for i, b := range bufs {
		if err := q.PostSend(b); err != nil {
			return fmt.Errorf("chaoslink %s: batch send %d/%d: %w", q.link, i, len(bufs), err)
		}
	}
	return nil
}

// PostRecvBatch implements rdma.BatchQueuePair: receives carry no faults,
// so the batch goes straight through to the inner transport's batch verb.
func (q *qp) PostRecvBatch(bufs []*rdma.Buffer) error {
	return rdma.PostRecvBatch(q.inner, bufs)
}

// PollCQ implements rdma.BatchQueuePair: a non-blocking drain of the
// wrapper CQ (which the pump feeds from the inner CQ, fault conversions
// applied). A closed CQ reads as empty.
func (q *qp) PollCQ(dst []rdma.Completion) int {
	n := 0
	for n < len(dst) {
		select {
		case c, ok := <-q.cq:
			if !ok {
				return n
			}
			dst[n] = c
			n++
		default:
			return n
		}
	}
	return n
}

// BufferedWire implements rdma.BufferedTransport by forwarding to the
// inner transport: fault injection adds no wire buffering of its own.
func (q *qp) BufferedWire() bool { return rdma.Buffered(q.inner) }

// Completions implements rdma.QueuePair.
func (q *qp) Completions() <-chan rdma.Completion { return q.cq }

// Close implements rdma.QueuePair.
func (q *qp) Close() error {
	q.closeOnce.Do(func() {
		close(q.done)
		_ = q.inner.Close()
		q.wg.Wait()
		// A post may have slipped into the hold queue between the
		// delayer's final drain and its exit; flush any straggler so its
		// buffer still returns through the CQ.
		if q.holdQ != nil {
			for drained := false; !drained; {
				select {
				case h := <-q.holdQ:
					q.shard.End(h.pend)
					q.cq <- rdma.Completion{Op: h.op, Buf: h.buf, Err: rdma.ErrFlushed}
				default:
					drained = true
				}
			}
		}
		close(q.cq)
	})
	return nil
}

// Expose implements rdma.WriteQueuePair.
func (w *writeQP) Expose(b *rdma.Buffer) (rdma.RemoteKey, error) { return w.winner.Expose(b) }

// PostWrite implements rdma.WriteQueuePair.
func (w *writeQP) PostWrite(key rdma.RemoteKey, offset int, src *rdma.Buffer) error {
	return w.submit(rdma.OpWrite, src, false,
		func() error { return w.winner.PostWrite(key, offset, src) }, nil)
}

// PostWriteImm implements rdma.WriteQueuePair.
func (w *writeQP) PostWriteImm(key rdma.RemoteKey, offset int, src *rdma.Buffer, imm uint32) error {
	return w.submit(rdma.OpWrite, src, true,
		func() error { return w.winner.PostWriteImm(key, offset, src, imm) },
		// A poisoned doorbell announces ~4 GiB in a buffer that cannot
		// hold it; the receiver must reject it without trusting a byte.
		func() error { return w.winner.PostWriteImm(key, offset, src, ^uint32(0)) })
}
