package rdmatest

import (
	"errors"
	"testing"
	"time"

	"cyclojoin/internal/rdma"
)

// RunWrites exercises the one-sided write semantics against the factory.
// The factory's queue pairs must implement rdma.WriteQueuePair.
func RunWrites(t *testing.T, factory Factory) {
	t.Run("WriteLandsAtOffset", func(t *testing.T) { testWriteLandsAtOffset(t, factory) })
	t.Run("WriteInvisibleWithoutImm", func(t *testing.T) { testWriteInvisible(t, factory) })
	t.Run("WriteImmNotifiesTarget", func(t *testing.T) { testWriteImm(t, factory) })
	t.Run("WriteBadKeyFails", func(t *testing.T) { testWriteBadKey(t, factory) })
	t.Run("WriteOutOfBoundsFails", func(t *testing.T) { testWriteOutOfBounds(t, factory) })
	t.Run("WritesDoNotConsumeReceives", func(t *testing.T) { testWritesDoNotConsumeReceives(t, factory) })
}

func writePair(t *testing.T, factory Factory) (rdma.WriteQueuePair, rdma.WriteQueuePair) {
	t.Helper()
	a, b := factory(t)
	wa, ok := a.(rdma.WriteQueuePair)
	if !ok {
		t.Fatalf("%T does not implement WriteQueuePair", a)
	}
	wb, ok := b.(rdma.WriteQueuePair)
	if !ok {
		t.Fatalf("%T does not implement WriteQueuePair", b)
	}
	return wa, wb
}

// reapWriter waits for the writer-side completion of a write.
func reapWriter(t *testing.T, qp rdma.QueuePair) rdma.Completion {
	t.Helper()
	select {
	case c, ok := <-qp.Completions():
		if !ok {
			t.Fatal("CQ closed while waiting for write completion")
		}
		return c
	case <-time.After(timeout):
		t.Fatal("timed out waiting for write completion")
	}
	panic("unreachable")
}

func testWriteLandsAtOffset(t *testing.T, factory Factory) {
	a, b := writePair(t, factory)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("t")

	target := register(t, dev, 32)
	copy(target.Data(), "................................")
	key, err := b.Expose(target)
	if err != nil {
		t.Fatal(err)
	}
	src := register(t, dev, 8)
	fill(t, src, []byte("SPIN"))
	if err := a.PostWriteImm(key, 10, src, 1); err != nil {
		t.Fatal(err)
	}
	if c := reapWriter(t, a); c.Err != nil || c.Op != rdma.OpWrite {
		t.Fatalf("writer completion = %+v", c)
	}
	// Wait for the target-side doorbell before inspecting memory.
	if c := reapWriter(t, b); c.Err != nil || c.Op != rdma.OpWrite {
		t.Fatalf("target completion = %+v", c)
	}
	if got := string(target.Data()[10:14]); got != "SPIN" {
		t.Errorf("target[10:14] = %q", got)
	}
	if target.Data()[9] != '.' || target.Data()[14] != '.' {
		t.Error("write spilled outside its extent")
	}
}

// testWriteInvisible: a plain write raises no completion at the target.
func testWriteInvisible(t *testing.T, factory Factory) {
	a, b := writePair(t, factory)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("t")

	target := register(t, dev, 16)
	key, err := b.Expose(target)
	if err != nil {
		t.Fatal(err)
	}
	src := register(t, dev, 4)
	fill(t, src, []byte("data"))
	if err := a.PostWrite(key, 0, src); err != nil {
		t.Fatal(err)
	}
	if c := reapWriter(t, a); c.Err != nil {
		t.Fatal(c.Err)
	}
	select {
	case c := <-b.Completions():
		t.Fatalf("plain write raised a target completion: %+v", c)
	case <-time.After(100 * time.Millisecond):
		// Good: the target CPU never noticed — that is the point.
	}
}

func testWriteImm(t *testing.T, factory Factory) {
	a, b := writePair(t, factory)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("t")

	target := register(t, dev, 16)
	key, err := b.Expose(target)
	if err != nil {
		t.Fatal(err)
	}
	src := register(t, dev, 4)
	fill(t, src, []byte("ding"))
	if err := a.PostWriteImm(key, 0, src, 0xbeef); err != nil {
		t.Fatal(err)
	}
	if c := reapWriter(t, a); c.Err != nil {
		t.Fatal(c.Err)
	}
	c := reapWriter(t, b)
	if c.Err != nil || c.Op != rdma.OpWrite {
		t.Fatalf("target completion = %+v", c)
	}
	if c.Imm != 0xbeef {
		t.Errorf("imm = %#x, want 0xbeef", c.Imm)
	}
	if c.Buf != target {
		t.Error("target completion does not reference the exposed buffer")
	}
}

func testWriteBadKey(t *testing.T, factory Factory) {
	a, b := writePair(t, factory)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("t")

	src := register(t, dev, 4)
	fill(t, src, []byte("boom"))
	if err := a.PostWrite(rdma.RemoteKey(12345), 0, src); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(timeout)
	for {
		select {
		case c, ok := <-a.Completions():
			if !ok {
				return // link torn down, acceptable for a protection fault
			}
			if c.Err != nil {
				if !errors.Is(c.Err, rdma.ErrBadRemoteKey) {
					t.Logf("note: fault surfaced as %v", c.Err)
				}
				return
			}
		case <-deadline:
			t.Fatal("bad-key write never surfaced an error")
		}
	}
}

func testWriteOutOfBounds(t *testing.T, factory Factory) {
	a, b := writePair(t, factory)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("t")

	target := register(t, dev, 8)
	key, err := b.Expose(target)
	if err != nil {
		t.Fatal(err)
	}
	src := register(t, dev, 8)
	fill(t, src, []byte("12345678"))
	if err := a.PostWrite(key, 4, src); err != nil { // 4+8 > 8
		t.Fatal(err)
	}
	deadline := time.After(timeout)
	for {
		select {
		case c, ok := <-a.Completions():
			if !ok {
				return
			}
			if c.Err != nil {
				return
			}
		case <-deadline:
			t.Fatal("out-of-bounds write never surfaced an error")
		}
	}
}

// testWritesDoNotConsumeReceives: one-sided traffic must leave the
// two-sided receive queue untouched.
func testWritesDoNotConsumeReceives(t *testing.T, factory Factory) {
	a, b := writePair(t, factory)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("t")

	// One posted receive, then a write, then a send: the send must land
	// in the posted buffer.
	rb := register(t, dev, 16)
	if err := b.PostRecv(rb); err != nil {
		t.Fatal(err)
	}
	target := register(t, dev, 16)
	key, err := b.Expose(target)
	if err != nil {
		t.Fatal(err)
	}
	wsrc := register(t, dev, 4)
	fill(t, wsrc, []byte("wwww"))
	if err := a.PostWrite(key, 0, wsrc); err != nil {
		t.Fatal(err)
	}
	ssrc := register(t, dev, 4)
	fill(t, ssrc, []byte("ssss"))
	if err := a.PostSend(ssrc); err != nil {
		t.Fatal(err)
	}
	// Drain the two writer completions (write + send).
	for i := 0; i < 2; i++ {
		if c := reapWriter(t, a); c.Err != nil {
			t.Fatal(c.Err)
		}
	}
	rc := reap(t, b, rdma.OpRecv)
	if rc.Buf != rb || string(rc.Buf.Bytes()) != "ssss" {
		t.Errorf("send landed wrong: buf=%v payload=%q", rc.Buf == rb, rc.Buf.Bytes())
	}
}
