// Package rdmatest is a conformance suite for rdma.QueuePair
// implementations. All three transports — memlink, tcplink and the
// kerneltcp baseline — must provide identical semantics (exactly-once,
// in-order, blocking RNR, ownership via completions), because the Data
// Roundabout runtime is written once against the interface and §V-G swaps
// the transport underneath it.
package rdmatest

import (
	"testing"
	"time"

	"cyclojoin/internal/rdma"
)

// Factory builds a connected queue-pair pair for one test. Cleanup is the
// caller's: the suite closes both ends itself.
type Factory func(t *testing.T) (a, b rdma.QueuePair)

// timeout bounds every blocking wait in the suite.
const timeout = 5 * time.Second

// Run exercises the full conformance suite against the factory.
func Run(t *testing.T, factory Factory) {
	t.Run("PingPong", func(t *testing.T) { testPingPong(t, factory) })
	t.Run("InOrderBurst", func(t *testing.T) { testInOrderBurst(t, factory) })
	t.Run("SenderBlocksUntilReceivePosted", func(t *testing.T) { testRNR(t, factory) })
	t.Run("BufferTooSmall", func(t *testing.T) { testBufferTooSmall(t, factory) })
	t.Run("PostAfterClose", func(t *testing.T) { testPostAfterClose(t, factory) })
	t.Run("CloseIdempotent", func(t *testing.T) { testCloseIdempotent(t, factory) })
	t.Run("Bidirectional", func(t *testing.T) { testBidirectional(t, factory) })
	t.Run("BatchInOrder", func(t *testing.T) { testBatchInOrder(t, factory) })
	t.Run("BatchPollCQ", func(t *testing.T) { testBatchPollCQ(t, factory) })
}

func reap(t *testing.T, qp rdma.QueuePair, want rdma.Op) rdma.Completion {
	t.Helper()
	select {
	case c, ok := <-qp.Completions():
		if !ok {
			t.Fatalf("completion queue closed while waiting for %s", want)
		}
		if c.Err != nil {
			t.Fatalf("completion error waiting for %s: %v", want, c.Err)
		}
		if c.Op != want {
			t.Fatalf("completion op = %s, want %s", c.Op, want)
		}
		return c
	case <-time.After(timeout):
		t.Fatalf("timed out waiting for %s completion", want)
	}
	panic("unreachable")
}

func register(t *testing.T, dev *rdma.Device, size int) *rdma.Buffer {
	t.Helper()
	b, err := dev.Register(size)
	if err != nil {
		t.Fatalf("Register(%d): %v", size, err)
	}
	return b
}

func fill(t *testing.T, b *rdma.Buffer, payload []byte) {
	t.Helper()
	copy(b.Data(), payload)
	if err := b.SetLen(len(payload)); err != nil {
		t.Fatal(err)
	}
}

func testPingPong(t *testing.T, factory Factory) {
	a, b := factory(t)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("test")

	rb := register(t, dev, 64)
	if err := b.PostRecv(rb); err != nil {
		t.Fatal(err)
	}
	sb := register(t, dev, 64)
	fill(t, sb, []byte("spinning join"))
	if err := a.PostSend(sb); err != nil {
		t.Fatal(err)
	}
	sc := reap(t, a, rdma.OpSend)
	if sc.Buf != sb {
		t.Error("send completion returned a different buffer")
	}
	rc := reap(t, b, rdma.OpRecv)
	if rc.Buf != rb {
		t.Error("recv completion returned a different buffer")
	}
	if got := string(rc.Buf.Bytes()); got != "spinning join" {
		t.Errorf("payload = %q", got)
	}
}

func testInOrderBurst(t *testing.T, factory Factory) {
	a, b := factory(t)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("test")

	const n = 50
	// Post all receives up front.
	for i := 0; i < n; i++ {
		if err := b.PostRecv(register(t, dev, 16)); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		for i := 0; i < n; i++ {
			sb, err := dev.Register(16)
			if err != nil {
				return
			}
			sb.Data()[0] = byte(i)
			if err := sb.SetLen(1 + i%8); err != nil {
				return
			}
			if err := a.PostSend(sb); err != nil {
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		rc := reap(t, b, rdma.OpRecv)
		if got := rc.Buf.Bytes()[0]; got != byte(i) {
			t.Fatalf("message %d arrived with sequence byte %d: out of order", i, got)
		}
		if rc.Buf.Len() != 1+i%8 {
			t.Fatalf("message %d length %d, want %d", i, rc.Buf.Len(), 1+i%8)
		}
	}
}

// testRNR: a message sent before any receive buffer is posted must wait,
// not vanish. This blocking is what gives the Data Roundabout its
// backpressure (§V-D).
func testRNR(t *testing.T, factory Factory) {
	a, b := factory(t)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("test")

	sb := register(t, dev, 32)
	fill(t, sb, []byte("early"))
	if err := a.PostSend(sb); err != nil {
		t.Fatal(err)
	}
	// Give the transport a moment; the message must not be dropped.
	time.Sleep(50 * time.Millisecond)
	rb := register(t, dev, 32)
	if err := b.PostRecv(rb); err != nil {
		t.Fatal(err)
	}
	rc := reap(t, b, rdma.OpRecv)
	if got := string(rc.Buf.Bytes()); got != "early" {
		t.Errorf("payload = %q", got)
	}
}

func testBufferTooSmall(t *testing.T, factory Factory) {
	a, b := factory(t)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("test")

	rb := register(t, dev, 4)
	if err := b.PostRecv(rb); err != nil {
		t.Fatal(err)
	}
	sb := register(t, dev, 64)
	fill(t, sb, []byte("this message is longer than four bytes"))
	if err := a.PostSend(sb); err != nil {
		t.Fatal(err)
	}
	select {
	case c, ok := <-b.Completions():
		if ok && c.Err == nil {
			t.Error("oversized message delivered without error")
		}
	case <-time.After(timeout):
		t.Fatal("timed out waiting for error completion")
	}
}

func testPostAfterClose(t *testing.T, factory Factory) {
	a, b := factory(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	dev := rdma.OpenDevice("test")
	buf := register(t, dev, 8)
	if err := a.PostSend(buf); err == nil {
		t.Error("PostSend after Close: want error")
	}
	//cyclolint:bufsafe both posts target a closed transport and fail; custody never leaves the test
	if err := a.PostRecv(buf); err == nil {
		t.Error("PostRecv after Close: want error")
	}
	_ = b.Close()
}

func testCloseIdempotent(t *testing.T, factory Factory) {
	a, b := factory(t)
	for i := 0; i < 3; i++ {
		if err := a.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	_ = b.Close()
	// The completion queue must eventually close.
	select {
	case _, ok := <-a.Completions():
		if ok {
			// Drain any residual completion; channel must close soon.
			for range a.Completions() {
			}
		}
	case <-time.After(timeout):
		t.Fatal("completion queue did not close")
	}
}

func testBidirectional(t *testing.T, factory Factory) {
	a, b := factory(t)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("test")

	const n = 20
	for i := 0; i < n; i++ {
		if err := a.PostRecv(register(t, dev, 16)); err != nil {
			t.Fatal(err)
		}
		if err := b.PostRecv(register(t, dev, 16)); err != nil {
			t.Fatal(err)
		}
	}
	send := func(qp rdma.QueuePair, tag byte) {
		for i := 0; i < n; i++ {
			sb, err := dev.Register(16)
			if err != nil {
				return
			}
			sb.Data()[0], sb.Data()[1] = tag, byte(i)
			if err := sb.SetLen(2); err != nil {
				return
			}
			if err := qp.PostSend(sb); err != nil {
				return
			}
		}
	}
	go send(a, 'a')
	go send(b, 'b')
	gotA, gotB := 0, 0
	deadline := time.After(timeout)
	for gotA < n || gotB < n {
		select {
		case c, ok := <-a.Completions():
			if !ok {
				t.Fatal("a's CQ closed early")
			}
			if c.Err != nil {
				t.Fatal(c.Err)
			}
			if c.Op == rdma.OpRecv {
				if c.Buf.Bytes()[0] != 'b' || c.Buf.Bytes()[1] != byte(gotA) {
					t.Fatalf("a received %v out of order (want seq %d)", c.Buf.Bytes(), gotA)
				}
				gotA++
			}
		case c, ok := <-b.Completions():
			if !ok {
				t.Fatal("b's CQ closed early")
			}
			if c.Err != nil {
				t.Fatal(c.Err)
			}
			if c.Op == rdma.OpRecv {
				if c.Buf.Bytes()[0] != 'a' || c.Buf.Bytes()[1] != byte(gotB) {
					t.Fatalf("b received %v out of order (want seq %d)", c.Buf.Bytes(), gotB)
				}
				gotB++
			}
		case <-deadline:
			t.Fatalf("timed out: a got %d/%d, b got %d/%d", gotA, n, gotB, n)
		}
	}
}

// testBatchInOrder checks the doorbell-batch contract (DESIGN.md §11):
// PostSendBatch(a, b, c, …) is observably identical to per-buffer posts —
// in-order arrival, one completion per buffer, ownership returning with
// each completion. The run is longer than any native batch chunk, so
// transports that split internally are exercised across the seam; the
// package helpers route through the native verbs when present and the
// per-buffer fallback otherwise, so the kerneltcp baseline passes too.
func testBatchInOrder(t *testing.T, factory Factory) {
	a, b := factory(t)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("test")

	const n = 40
	rbs := make([]*rdma.Buffer, n)
	for i := range rbs {
		rbs[i] = register(t, dev, 16)
	}
	if err := rdma.PostRecvBatch(b, rbs); err != nil {
		t.Fatal(err)
	}
	sbs := make([]*rdma.Buffer, n)
	for i := range sbs {
		sbs[i] = register(t, dev, 16)
		sbs[i].Data()[0] = byte(i)
		if err := sbs[i].SetLen(1 + i%8); err != nil {
			t.Fatal(err)
		}
	}
	if err := rdma.PostSendBatch(a, sbs); err != nil {
		t.Fatal(err)
	}
	sent := make(map[*rdma.Buffer]bool, n)
	for i := 0; i < n; i++ {
		sc := reap(t, a, rdma.OpSend)
		if sent[sc.Buf] {
			t.Fatalf("send completion %d returned buffer twice", i)
		}
		sent[sc.Buf] = true
	}
	for _, sb := range sbs {
		if !sent[sb] {
			t.Fatal("a batched buffer never got a send completion")
		}
	}
	for i := 0; i < n; i++ {
		rc := reap(t, b, rdma.OpRecv)
		if got := rc.Buf.Bytes()[0]; got != byte(i) {
			t.Fatalf("batched message %d arrived with sequence byte %d: out of order", i, got)
		}
		if rc.Buf.Len() != 1+i%8 {
			t.Fatalf("batched message %d length %d, want %d", i, rc.Buf.Len(), 1+i%8)
		}
	}
}

// testBatchPollCQ checks the bulk reaper: PollCQ never blocks, drains at
// most len(dst) entries, interleaves correctly with channel receives, and
// together they deliver every completion exactly once.
func testBatchPollCQ(t *testing.T, factory Factory) {
	a, b := factory(t)
	defer closeBoth(a, b)
	dev := rdma.OpenDevice("test")

	var none [4]rdma.Completion
	if got := rdma.PollCQ(a, none[:]); got != 0 {
		t.Fatalf("PollCQ on idle queue pair = %d, want 0", got)
	}
	if got := rdma.PollCQ(a, nil); got != 0 {
		t.Fatalf("PollCQ with empty dst = %d, want 0", got)
	}

	const n = 12
	rbs := make([]*rdma.Buffer, n)
	for i := range rbs {
		rbs[i] = register(t, dev, 16)
	}
	if err := rdma.PostRecvBatch(b, rbs); err != nil {
		t.Fatal(err)
	}
	sbs := make([]*rdma.Buffer, n)
	for i := range sbs {
		sbs[i] = register(t, dev, 16)
		sbs[i].Data()[0] = byte(i)
		if err := sbs[i].SetLen(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := rdma.PostSendBatch(a, sbs); err != nil {
		t.Fatal(err)
	}
	// Reap the sends with the mixed discipline the ring uses: block on the
	// channel for the first completion, bulk-poll the rest of the drain.
	batch := make([]rdma.Completion, 4)
	reaped := 0
	deadline := time.After(timeout)
	for reaped < n {
		select {
		case c, ok := <-a.Completions():
			if !ok {
				t.Fatal("a's CQ closed early")
			}
			if c.Err != nil || c.Op != rdma.OpSend {
				t.Fatalf("unexpected completion %s err=%v", c.Op, c.Err)
			}
			reaped++
		case <-deadline:
			t.Fatalf("timed out: reaped %d/%d send completions", reaped, n)
		}
		m := rdma.PollCQ(a, batch)
		if m > len(batch) {
			t.Fatalf("PollCQ returned %d > len(dst) %d", m, len(batch))
		}
		for _, c := range batch[:m] {
			if c.Err != nil || c.Op != rdma.OpSend {
				t.Fatalf("unexpected polled completion %s err=%v", c.Op, c.Err)
			}
			reaped++
		}
	}
	if reaped != n {
		t.Fatalf("reaped %d send completions, want exactly %d", reaped, n)
	}
	for i := 0; i < n; i++ {
		rc := reap(t, b, rdma.OpRecv)
		if got := rc.Buf.Bytes()[0]; got != byte(i) {
			t.Fatalf("message %d arrived with sequence byte %d", i, got)
		}
	}
}

func closeBoth(a, b rdma.QueuePair) {
	_ = a.Close()
	_ = b.Close()
}
