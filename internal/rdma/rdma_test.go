package rdma

import "testing"

func TestOpString(t *testing.T) {
	if OpSend.String() != "send" || OpRecv.String() != "recv" {
		t.Error("Op strings wrong")
	}
	if Op(9).String() == "" {
		t.Error("unknown op must still print")
	}
}

func TestRegister(t *testing.T) {
	d := OpenDevice("rnic0")
	if d.Name() != "rnic0" {
		t.Errorf("Name = %q", d.Name())
	}
	b, err := d.Register(4096)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cap() != 4096 || b.Len() != 0 {
		t.Errorf("Cap=%d Len=%d", b.Cap(), b.Len())
	}
	st := d.Stats()
	if st.Registrations != 1 || st.BytesPinned != 4096 {
		t.Errorf("stats = %+v", st)
	}
	if st.ModeledCost <= 0 {
		t.Error("registration must have a modeled cost")
	}
}

func TestRegisterInvalidSize(t *testing.T) {
	d := OpenDevice("rnic0")
	for _, size := range []int{0, -5} {
		if _, err := d.Register(size); err == nil {
			t.Errorf("Register(%d): want error", size)
		}
	}
}

func TestRegisterPool(t *testing.T) {
	d := OpenDevice("rnic0")
	pool, err := d.RegisterPool(8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 8 {
		t.Fatalf("pool size %d", len(pool))
	}
	st := d.Stats()
	if st.Registrations != 8 || st.BytesPinned != 8*1024 {
		t.Errorf("stats = %+v", st)
	}
	if _, err := d.RegisterPool(0, 1024); err == nil {
		t.Error("RegisterPool(0): want error")
	}
}

// TestRegistrationCostScalesWithPages pins down the cost model shape: more
// pages, more cost — the reason the ring registers once and reuses (§III-C).
func TestRegistrationCostScalesWithPages(t *testing.T) {
	small := OpenDevice("s")
	large := OpenDevice("l")
	if _, err := small.Register(4096); err != nil {
		t.Fatal(err)
	}
	if _, err := large.Register(1 << 20); err != nil {
		t.Fatal(err)
	}
	if large.Stats().ModeledCost <= small.Stats().ModeledCost {
		t.Error("larger registration must cost more")
	}
}

func TestBufferSetLen(t *testing.T) {
	d := OpenDevice("rnic0")
	b, err := d.Register(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetLen(16); err != nil {
		t.Errorf("SetLen(16): %v", err)
	}
	if err := b.SetLen(17); err == nil {
		t.Error("SetLen beyond extent: want error")
	}
	if err := b.SetLen(-1); err == nil {
		t.Error("SetLen(-1): want error")
	}
	copy(b.Data(), "hello, roundabout")
	if err := b.SetLen(5); err != nil {
		t.Fatal(err)
	}
	if string(b.Bytes()) != "hello" {
		t.Errorf("Bytes() = %q", b.Bytes())
	}
}
