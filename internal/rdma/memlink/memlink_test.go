package memlink

import (
	"testing"

	"cyclojoin/internal/rdma"
	"cyclojoin/internal/rdma/rdmatest"
)

func TestConformance(t *testing.T) {
	rdmatest.Run(t, func(t *testing.T) (rdma.QueuePair, rdma.QueuePair) {
		return Pair()
	})
}

// TestZeroCopySemantics verifies the payload lands in the exact buffer the
// receiver posted — direct data placement, not delivery of a fresh slice.
func TestZeroCopySemantics(t *testing.T) {
	a, b := Pair()
	defer func() {
		_ = a.Close()
		_ = b.Close()
	}()
	dev := rdma.OpenDevice("t")
	rb, err := dev.Register(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PostRecv(rb); err != nil {
		t.Fatal(err)
	}
	sb, err := dev.Register(32)
	if err != nil {
		t.Fatal(err)
	}
	copy(sb.Data(), "ddp")
	if err := sb.SetLen(3); err != nil {
		t.Fatal(err)
	}
	if err := a.PostSend(sb); err != nil {
		t.Fatal(err)
	}
	var rc rdma.Completion
	for rc.Op != rdma.OpRecv {
		c, ok := <-b.Completions()
		if !ok {
			t.Fatal("cq closed")
		}
		if c.Err != nil {
			t.Fatal(c.Err)
		}
		if c.Op == rdma.OpRecv {
			rc = c
		} else if c.Op == rdma.OpSend {
			continue
		}
	}
	if rc.Buf != rb {
		t.Fatal("receive completed into a buffer the application did not post")
	}
	if string(rb.Data()[:3]) != "ddp" {
		t.Fatalf("posted buffer does not contain the payload: %q", rb.Data()[:3])
	}
}

func TestWriteConformance(t *testing.T) {
	rdmatest.RunWrites(t, func(t *testing.T) (rdma.QueuePair, rdma.QueuePair) {
		return Pair()
	})
}
