// Package memlink implements rdma.QueuePair for two endpoints in the same
// process.
//
// A send performs exactly one data movement: the payload is copied from the
// sender's registered buffer directly into the receiver's pre-posted
// registered buffer. That single copy is precisely the semantics of RDMA
// direct data placement — on hardware it is the NIC's DMA engine writing
// into the target buffer; here it is one memmove — and there is no
// intermediate staging in either "host's" software, no kernel buffer and no
// per-message allocation.
//
// Receiver-not-ready behaviour matches a reliable-connection queue pair:
// a sender whose peer has no posted receive buffer blocks until one is
// posted (hardware would retry/backpressure; the effect on the Data
// Roundabout — upstream hosts stall when a slow host's ring buffers fill —
// is the same, and §V-D's skew-balancing argument depends on it).
package memlink

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"cyclojoin/internal/metrics"
	"cyclojoin/internal/rdma"
	"cyclojoin/internal/trace"
)

// Transfer instrumentation, one atomic add per event (internal/metrics).
var (
	mSendTransfers  = metrics.Default().Counter("memlink_transfers_total", "data movements over in-process links", "kind", "send")
	mWriteTransfers = metrics.Default().Counter("memlink_transfers_total", "data movements over in-process links", "kind", "write")
	mBytes          = metrics.Default().Counter("memlink_bytes_total", "payload bytes moved over in-process links")
)

// linkSeq names flight-recorder tracks across all links in the process.
var linkSeq atomic.Int64

// queueDepth bounds the number of outstanding posted buffers per direction.
// The Data Roundabout posts at most its ring-buffer count.
const queueDepth = 256

// maxBatch bounds how many sends ride in one work request. Larger batches
// are split transparently; the bound exists so the buffers can live in a
// fixed array INSIDE the workReq — the caller's slice is copied out at
// post time, letting it reuse its scratch immediately without racing the
// DMA goroutine, and without a per-batch heap allocation.
const maxBatch = 16

// workReq is one outbound work request (send, one-sided write, or a
// doorbell-batched run of sends).
type workReq struct {
	kind   rdma.Op
	buf    *rdma.Buffer
	key    rdma.RemoteKey
	off    int
	imm    uint32
	hasImm bool
	// batchLen > 0 marks a batched send: the buffers are batchArr[:batchLen]
	// and buf is nil. The array is inline (not a slice) because the workReq
	// is copied by value through sendQ — a slice into a local array would
	// dangle.
	batchLen int
	batchArr [maxBatch]*rdma.Buffer
	// pend is the flight-recorder span opened at post time and closed at
	// completion — the WR post→completion latency the paper's §III-B
	// pipelining argument turns on. A batch carries one span for the whole
	// run: the doorbell is the unit being measured.
	pend trace.Pending
}

type link struct {
	peer *link

	sendQ chan workReq
	recvQ chan *rdma.Buffer
	cq    chan rdma.Completion

	// shard records this link's work-request spans on the transport
	// track; inert when flight recording is disabled.
	shard *trace.Shard

	mu      sync.Mutex
	exposed map[rdma.RemoteKey]*rdma.Buffer
	nextKey rdma.RemoteKey
	// recvPend holds the open WRRecv span per posted receive buffer
	// (guarded by mu): posted→filled is the buffer's residency time.
	recvPend map[*rdma.Buffer]trace.Pending

	// cqMu guards cq against close: completions are delivered by the
	// PEER link's DMA goroutine, which outlives this side's Close.
	cqMu     sync.RWMutex
	cqClosed bool

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

var (
	_ rdma.WriteQueuePair = (*link)(nil)
	_ rdma.BatchQueuePair = (*link)(nil)
)

// Pair returns two connected in-process queue pairs.
func Pair() (a, b rdma.QueuePair) {
	la := newLink()
	lb := newLink()
	la.peer, lb.peer = lb, la
	la.start()
	lb.start()
	return la, lb
}

func newLink() *link {
	return &link{
		sendQ: make(chan workReq, queueDepth),
		recvQ: make(chan *rdma.Buffer, queueDepth),
		// The CQ out-sizes both work queues together so flush() can always
		// deliver its WR_FLUSH_ERR completions without blocking: every
		// posted work request must come back through the CQ even when
		// nobody is reaping anymore.
		cq:       make(chan rdma.Completion, 2*queueDepth+64),
		exposed:  make(map[rdma.RemoteKey]*rdma.Buffer),
		recvPend: make(map[*rdma.Buffer]trace.Pending),
		done:     make(chan struct{}),
		shard:    trace.Flight().Shard(trace.NodeTransport, "memlink/"+strconv.FormatInt(linkSeq.Add(1), 10)),
	}
}

func (l *link) start() {
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.sendLoop()
	}()
}

// sendLoop is the virtual DMA engine: it moves each posted send into the
// peer's next posted receive buffer (two-sided) or directly into the
// peer's exposed buffer (one-sided write), raising the completions the
// verbs semantics call for.
func (l *link) sendLoop() {
	for {
		var wr workReq
		// Fast path: drain already-posted work with a non-blocking receive;
		// the two-way select (and its channel locking) is the slow path.
		// Shutdown still lands: a closed link stops producing work, so the
		// queue drains and the next pass parks in the select below.
		select {
		case wr = <-l.sendQ:
		default:
			select {
			case <-l.done:
				return
			case wr = <-l.sendQ:
			}
		}
		if wr.kind == rdma.OpWrite {
			l.performWrite(wr)
			continue
		}
		if wr.batchLen > 0 {
			// Doorbell batch: one queue hand-off delivered the whole run;
			// place each buffer in order. A shutdown mid-run flushes the
			// unplaced remainder here — flush() cannot see a dequeued WR.
			total := 0
			aborted := false
			for i := 0; i < wr.batchLen; i++ {
				n, ok := l.placeSend(wr.batchArr[i])
				if !ok {
					for _, rest := range wr.batchArr[i+1 : wr.batchLen] {
						l.complete(rdma.Completion{Op: rdma.OpSend, Buf: rest, Err: rdma.ErrFlushed})
					}
					aborted = true
					break
				}
				total += n
			}
			wr.pend.Arg = int64(total)
			wr.pend.Aux = int64(len(l.cq))
			l.shard.End(wr.pend)
			if aborted {
				return
			}
			continue
		}
		n, ok := l.placeSend(wr.buf)
		if !ok {
			return
		}
		if n > 0 {
			wr.pend.Arg = int64(n)
			wr.pend.Aux = int64(len(l.cq))
			l.shard.End(wr.pend)
		}
	}
}

// placeSend waits for the peer's next posted receive buffer and performs
// the single-copy direct data placement for sb, raising the completions
// on both sides. ok is false when the link (or peer) shut down during the
// wait; sb's terminal completion has been delivered either way, so a
// false return only tells the DMA loop to exit. n is the payload size
// placed (0 when the message was rejected as too large — the link stays
// up, matching per-WR error semantics).
func (l *link) placeSend(sb *rdma.Buffer) (n int, ok bool) {
	payload := sb.Bytes()
	var rb *rdma.Buffer
	// Receiver-not-ready: waiting for the peer to post a buffer is the
	// RNR stall interval. The span is opened only on the slow path.
	select {
	case rb = <-l.peer.recvQ:
	default:
		cs := l.shard.Begin(trace.PhaseCreditStall)
		cs.Arg = int64(len(payload))
		select {
		case <-l.done:
			// Record the stall interval even on shutdown: the time spent
			// waiting for a credit that never came is exactly what the
			// stall analysis wants to see. The work request was already
			// dequeued, so flush() cannot see it — hand its buffer back
			// here or it would never return through the CQ.
			l.shard.End(cs)
			l.complete(rdma.Completion{Op: rdma.OpSend, Buf: sb, Err: rdma.ErrFlushed})
			return 0, false
		case <-l.peer.done:
			l.shard.End(cs)
			l.complete(rdma.Completion{Op: rdma.OpSend, Buf: sb, Err: rdma.ErrClosed})
			return 0, false
		case rb = <-l.peer.recvQ:
		}
		l.shard.End(cs)
	}
	if len(payload) > rb.Cap() {
		err := fmt.Errorf("%w: message %d B, buffer %d B", rdma.ErrBufferTooSmall, len(payload), rb.Cap())
		l.complete(rdma.Completion{Op: rdma.OpSend, Buf: sb, Err: err})
		l.peer.complete(rdma.Completion{Op: rdma.OpRecv, Buf: rb, Err: err})
		return 0, true
	}
	// Direct data placement: the single data movement of the
	// transfer, sender's registered buffer → receiver's registered
	// buffer.
	copy(rb.Data(), payload)
	if err := rb.SetLen(len(payload)); err != nil {
		l.peer.complete(rdma.Completion{Op: rdma.OpRecv, Buf: rb, Err: err})
		return 0, true
	}
	mSendTransfers.Inc()
	mBytes.Add(int64(len(payload)))
	l.peer.finishRecv(rb, len(payload))
	l.complete(rdma.Completion{Op: rdma.OpSend, Buf: sb})
	l.peer.complete(rdma.Completion{Op: rdma.OpRecv, Buf: rb})
	return len(payload), true
}

// performWrite places a one-sided write into the peer's exposed buffer.
func (l *link) performWrite(wr workReq) {
	target, err := l.peer.lookupExposed(wr.key)
	if err != nil {
		l.complete(rdma.Completion{Op: rdma.OpWrite, Buf: wr.buf, Err: err})
		return
	}
	payload := wr.buf.Bytes()
	if wr.off < 0 || wr.off+len(payload) > target.Cap() {
		l.complete(rdma.Completion{Op: rdma.OpWrite, Buf: wr.buf,
			Err: fmt.Errorf("%w: offset %d + %d B into %d B", rdma.ErrOutOfBounds, wr.off, len(payload), target.Cap())})
		return
	}
	copy(target.Data()[wr.off:], payload)
	mWriteTransfers.Inc()
	mBytes.Add(int64(len(payload)))
	wr.pend.Arg = int64(len(payload))
	wr.pend.Aux = int64(len(l.cq))
	l.shard.End(wr.pend)
	l.complete(rdma.Completion{Op: rdma.OpWrite, Buf: wr.buf})
	if wr.hasImm {
		// Write-with-immediate: the only one-sided form the target CPU
		// observes.
		l.peer.complete(rdma.Completion{Op: rdma.OpWrite, Buf: target, Imm: wr.imm})
	}
}

func (l *link) lookupExposed(key rdma.RemoteKey) (*rdma.Buffer, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.exposed[key]
	if !ok {
		return nil, fmt.Errorf("%w: key %d", rdma.ErrBadRemoteKey, key)
	}
	return b, nil
}

// Expose implements rdma.WriteQueuePair.
func (l *link) Expose(b *rdma.Buffer) (rdma.RemoteKey, error) {
	select {
	case <-l.done:
		return 0, rdma.ErrClosed
	default:
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextKey++
	l.exposed[l.nextKey] = b
	return l.nextKey, nil
}

// PostWrite implements rdma.WriteQueuePair.
func (l *link) PostWrite(key rdma.RemoteKey, offset int, src *rdma.Buffer) error {
	return l.postWrite(workReq{kind: rdma.OpWrite, buf: src, key: key, off: offset})
}

// PostWriteImm implements rdma.WriteQueuePair.
func (l *link) PostWriteImm(key rdma.RemoteKey, offset int, src *rdma.Buffer, imm uint32) error {
	return l.postWrite(workReq{kind: rdma.OpWrite, buf: src, key: key, off: offset, imm: imm, hasImm: true})
}

// postWrite queues a one-sided write work request.
//
//cyclolint:hotpath
func (l *link) postWrite(wr workReq) error {
	select {
	case <-l.done:
		return rdma.ErrClosed
	default:
	}
	wr.pend = l.shard.Begin(trace.PhaseWRWrite)
	select {
	case <-l.done:
		return rdma.ErrClosed
	case l.sendQ <- wr:
		return nil
	}
}

// complete delivers a completion unless the CQ is already closed. The
// guard is needed because the peer's DMA goroutine also delivers here.
//
// Delivery must not race l.done: a frame already placed in the peer's
// buffer whose success completion is dropped would look undelivered to the
// sender and be re-sent by ring recovery — a duplicate. The done escape is
// therefore a last resort taken only when the CQ is genuinely full during
// teardown (the consumer is gone), never while there is room.
//
//cyclolint:hotpath
func (l *link) complete(c rdma.Completion) {
	l.cqMu.RLock()
	defer l.cqMu.RUnlock()
	if l.cqClosed {
		return
	}
	select {
	case l.cq <- c:
		return
	default:
	}
	select {
	case l.cq <- c:
	case <-l.done:
	}
}

// PostSend implements rdma.QueuePair.
//
//cyclolint:hotpath
func (l *link) PostSend(b *rdma.Buffer) error {
	// Check shutdown first: with a closed done channel and free queue
	// space, a bare select would choose nondeterministically.
	select {
	case <-l.done:
		return rdma.ErrClosed
	default:
	}
	select {
	case <-l.done:
		return rdma.ErrClosed
	case l.sendQ <- workReq{kind: rdma.OpSend, buf: b, pend: l.shard.Begin(trace.PhaseWRSend)}:
		return nil
	}
}

// PostRecv implements rdma.QueuePair.
//
//cyclolint:hotpath
func (l *link) PostRecv(b *rdma.Buffer) error {
	// Check shutdown first: with a closed done channel and free queue
	// space, a bare select would choose nondeterministically.
	select {
	case <-l.done:
		return rdma.ErrClosed
	default:
	}
	// Stamp the residency span BEFORE the buffer becomes visible to the
	// peer's DMA goroutine: once enqueued, finishRecv may run immediately.
	l.stampRecv(b)
	select {
	case <-l.done:
		l.dropRecvStamp(b)
		return rdma.ErrClosed
	case l.recvQ <- b:
		return nil
	}
}

// PostSendBatch implements rdma.BatchQueuePair: the whole run crosses to
// the DMA goroutine in one queue hand-off (one doorbell) instead of one
// per frame. Runs longer than maxBatch split into several doorbells.
//
//cyclolint:hotpath
func (l *link) PostSendBatch(bufs []*rdma.Buffer) error {
	for len(bufs) > 0 {
		n := len(bufs)
		if n > maxBatch {
			n = maxBatch
		}
		select {
		case <-l.done:
			return rdma.ErrClosed
		default:
		}
		wr := workReq{kind: rdma.OpSend, batchLen: n, pend: l.shard.Begin(trace.PhaseWRSend)}
		copy(wr.batchArr[:n], bufs[:n])
		// Fast path: the work queue usually has room — one non-blocking
		// send beats arming the two-way select. The shutdown check above
		// keeps the post/close race window no wider than the select's.
		select {
		case l.sendQ <- wr:
		default:
			select {
			case <-l.done:
				l.shard.End(wr.pend)
				return rdma.ErrClosed
			case l.sendQ <- wr:
			}
		}
		bufs = bufs[n:]
	}
	return nil
}

// PostRecvBatch implements rdma.BatchQueuePair. The receive queue is
// consumed buffer-at-a-time by the peer's DMA engine, so the batch form
// is a single shutdown check plus the per-buffer enqueues — prefix-atomic
// like the send side.
//
//cyclolint:hotpath
func (l *link) PostRecvBatch(bufs []*rdma.Buffer) error {
	select {
	case <-l.done:
		return rdma.ErrClosed
	default:
	}
	for i, b := range bufs {
		l.stampRecv(b)
		// Fast path: the receive queue usually has room — one non-blocking
		// send beats arming the two-way select.
		select {
		case l.recvQ <- b:
			continue
		default:
		}
		select {
		case <-l.done:
			l.dropRecvStamp(b)
			//cyclolint:coldpath link teardown: the queue pair is closing
			return fmt.Errorf("rdma: batch recv %d/%d: %w", i, len(bufs), rdma.ErrClosed)
		case l.recvQ <- b:
		}
	}
	return nil
}

// PollCQ implements rdma.BatchQueuePair: a non-blocking drain of the
// completion channel. A closed CQ reads as empty.
//
//cyclolint:hotpath
func (l *link) PollCQ(dst []rdma.Completion) int {
	n := 0
	for n < len(dst) {
		select {
		case c, ok := <-l.cq:
			if !ok {
				return n
			}
			dst[n] = c
			n++
		default:
			return n
		}
	}
	return n
}

// stampRecv opens the WRRecv residency span for a buffer about to be
// posted.
//
//cyclolint:hotpath
func (l *link) stampRecv(b *rdma.Buffer) {
	if !l.shard.Enabled() {
		return
	}
	pd := l.shard.Begin(trace.PhaseWRRecv)
	l.mu.Lock()
	l.recvPend[b] = pd
	l.mu.Unlock()
}

// dropRecvStamp abandons a stamp whose post failed.
//
//cyclolint:hotpath
func (l *link) dropRecvStamp(b *rdma.Buffer) {
	if !l.shard.Enabled() {
		return
	}
	l.mu.Lock()
	delete(l.recvPend, b)
	l.mu.Unlock()
}

// finishRecv closes the buffer's WRRecv span when a message lands in it.
// Called by the PEER's DMA goroutine, hence the lock.
//
//cyclolint:hotpath
func (l *link) finishRecv(b *rdma.Buffer, n int) {
	if !l.shard.Enabled() {
		return
	}
	l.mu.Lock()
	pd, ok := l.recvPend[b]
	if ok {
		delete(l.recvPend, b)
	}
	l.mu.Unlock()
	if !ok {
		return
	}
	pd.Arg = int64(n)
	pd.Aux = int64(len(l.cq))
	l.shard.End(pd)
}

// Completions implements rdma.QueuePair.
func (l *link) Completions() <-chan rdma.Completion { return l.cq }

// Close implements rdma.QueuePair.
func (l *link) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.wg.Wait()
		l.flush()
		// Blocked deliveries (ours or the peer's) drain via l.done;
		// taking the write lock then excludes new ones before close.
		l.cqMu.Lock()
		l.cqClosed = true
		close(l.cq)
		l.cqMu.Unlock()
	})
	return nil
}

// flush hands every still-posted work request's buffer back to the
// application as an ErrFlushed completion (the verbs WR_FLUSH_ERR
// discipline) before the CQ closes. Runs after the DMA goroutine has
// exited, so the queues are quiescent; delivery is best-effort
// non-blocking against a CQ nobody may be reaping anymore.
func (l *link) flush() {
	deliver := func(c rdma.Completion) {
		select {
		case l.cq <- c:
		default:
		}
	}
drainSends:
	for {
		select {
		case wr := <-l.sendQ:
			l.shard.End(wr.pend)
			if wr.batchLen > 0 {
				for _, b := range wr.batchArr[:wr.batchLen] {
					deliver(rdma.Completion{Op: rdma.OpSend, Buf: b, Err: rdma.ErrFlushed})
				}
				continue
			}
			deliver(rdma.Completion{Op: wr.kind, Buf: wr.buf, Err: rdma.ErrFlushed})
		default:
			break drainSends
		}
	}
	for {
		select {
		case b := <-l.recvQ:
			l.dropRecvStamp(b)
			deliver(rdma.Completion{Op: rdma.OpRecv, Buf: b, Err: rdma.ErrFlushed})
		default:
			return
		}
	}
}
