package memlink

import (
	"testing"

	"cyclojoin/internal/rdma"
	"cyclojoin/internal/trace"
)

// TestWorkRequestSpans: with flight recording enabled, a send/recv
// exchange leaves a WR post→completion span on the sender track and a
// receive-residency span on the receiver track, both on the transport
// pseudo-node. Links take their shard at construction, so enabling must
// precede Pair.
func TestWorkRequestSpans(t *testing.T) {
	trace.Flight().Enable(trace.DefaultShardCap)
	trace.Flight().Reset()
	a, b := Pair()
	defer func() {
		_ = a.Close()
		_ = b.Close()
	}()
	dev := rdma.OpenDevice("flight")
	rb, err := dev.Register(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PostRecv(rb); err != nil {
		t.Fatal(err)
	}
	sb, err := dev.Register(64)
	if err != nil {
		t.Fatal(err)
	}
	copy(sb.Data(), "span payload")
	if err := sb.SetLen(12); err != nil {
		t.Fatal(err)
	}
	if err := a.PostSend(sb); err != nil {
		t.Fatal(err)
	}
	if c := <-b.Completions(); c.Err != nil || c.Op != rdma.OpRecv {
		t.Fatalf("bad receive completion: %+v", c)
	}
	if c := <-a.Completions(); c.Err != nil || c.Op != rdma.OpSend {
		t.Fatalf("bad send completion: %+v", c)
	}

	var sends, recvs int
	for _, sp := range trace.Flight().Snapshot() {
		if sp.Node != trace.NodeTransport {
			t.Fatalf("transport span on node %d: %+v", sp.Node, sp)
		}
		switch sp.Phase {
		case trace.PhaseWRSend:
			sends++
			if sp.Arg != 12 {
				t.Errorf("WR send span carries %d B, want 12: %+v", sp.Arg, sp)
			}
		case trace.PhaseWRRecv:
			recvs++
			if sp.Arg != 12 {
				t.Errorf("WR recv span carries %d B, want 12: %+v", sp.Arg, sp)
			}
		}
		if sp.Dur < 1 {
			t.Errorf("span never ended: %+v", sp)
		}
	}
	if sends != 1 || recvs != 1 {
		t.Fatalf("got %d WR send and %d WR recv spans, want 1 and 1", sends, recvs)
	}
	trace.Flight().Reset()
}
