package ringq

import "testing"

// FuzzSPSCIndex model-checks the index arithmetic: a queue whose cursors
// start at an arbitrary point — including just below uint64 overflow — is
// driven through a fuzzer-chosen push/pop sequence and compared against a
// plain slice model. The white-box cursor seeding is the point: the
// monotonic-index design only works if t-h comparisons and t&mask slot
// selection stay correct when t+1 wraps to 0.
func FuzzSPSCIndex(f *testing.F) {
	f.Add(uint8(0), uint64(0), []byte{0, 0, 1, 0, 1, 1})
	f.Add(uint8(2), ^uint64(0)-2, []byte{0, 0, 0, 0, 1, 1, 1, 1, 0, 1})
	f.Add(uint8(5), ^uint64(0)-7, []byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	f.Add(uint8(3), uint64(1)<<63, []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, capLog uint8, start uint64, ops []byte) {
		q := NewSPSC[uint64](1 << (capLog % 6))
		q.head.Store(start)
		q.tail.Store(start)
		q.cachedHead = start
		q.cachedTail = start

		var model []uint64
		var next uint64
		for _, op := range ops {
			if op&1 == 0 {
				pushed := q.TryPush(next)
				wantPushed := len(model) < q.Cap()
				if pushed != wantPushed {
					t.Fatalf("push(%d) = %v with %d/%d queued", next, pushed, len(model), q.Cap())
				}
				if pushed {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.TryPop()
				if wantOK := len(model) > 0; ok != wantOK {
					t.Fatalf("pop = _,%v with %d queued", ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("pop = %d, want %d", v, model[0])
					}
					model = model[1:]
				}
			}
			if got := q.Len(); got != len(model) {
				t.Fatalf("Len = %d, want %d", got, len(model))
			}
		}
	})
}

// FuzzMPMCIndex does the same for the Vyukov queue. Seeding the cursors
// at start requires re-stamping every slot's sequence number the way the
// constructor would have if indexes had begun there.
func FuzzMPMCIndex(f *testing.F) {
	f.Add(uint8(0), uint64(0), []byte{0, 1})
	f.Add(uint8(2), ^uint64(0)-1, []byte{0, 0, 0, 0, 1, 1, 1, 1})
	f.Add(uint8(4), ^uint64(0)-5, []byte{0, 1, 0, 1, 0, 0, 1, 1, 0, 1})
	f.Fuzz(func(t *testing.T, capLog uint8, start uint64, ops []byte) {
		q := NewMPMC[uint64](1 << (capLog % 6))
		q.head.Store(start)
		q.tail.Store(start)
		for i := 0; i < q.Cap(); i++ {
			idx := start + uint64(i)
			q.slots[idx&q.mask].seq.Store(idx)
		}

		var model []uint64
		var next uint64
		for _, op := range ops {
			if op&1 == 0 {
				pushed := q.TryPush(next)
				wantPushed := len(model) < q.Cap()
				if pushed != wantPushed {
					t.Fatalf("push(%d) = %v with %d/%d queued", next, pushed, len(model), q.Cap())
				}
				if pushed {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.TryPop()
				if wantOK := len(model) > 0; ok != wantOK {
					t.Fatalf("pop = _,%v with %d queued", ok, len(model))
				}
				if ok {
					if v != model[0] {
						t.Fatalf("pop = %d, want %d", v, model[0])
					}
					model = model[1:]
				}
			}
		}
	})
}
