package ringq

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"cyclojoin/internal/testutil"
)

func TestSPSCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {6, 8}, {7, 8}, {8, 8}, {9, 16},
	} {
		if got := NewSPSC[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
		wantM := tc.want
		if wantM < 2 {
			wantM = 2 // MPMC needs ≥ 2 slots; see NewMPMC
		}
		if got := NewMPMC[int](tc.ask).Cap(); got != wantM {
			t.Errorf("NewMPMC(%d).Cap() = %d, want %d", tc.ask, got, wantM)
		}
	}
}

func TestSPSCFIFOAndWraparound(t *testing.T) {
	q := NewSPSC[int](4)
	// Push/pop many multiples of the capacity so the indexes wrap the
	// mask repeatedly while the queue cycles between full and empty.
	next := 0
	for round := 0; round < 100; round++ {
		for i := 0; i < q.Cap(); i++ {
			if !q.TryPush(next + i) {
				t.Fatalf("round %d: push %d failed on non-full queue", round, i)
			}
		}
		if q.TryPush(-1) {
			t.Fatalf("round %d: push succeeded on full queue", round)
		}
		if got := q.Len(); got != q.Cap() {
			t.Fatalf("round %d: Len = %d, want %d", round, got, q.Cap())
		}
		for i := 0; i < q.Cap(); i++ {
			v, ok := q.TryPop()
			if !ok || v != next+i {
				t.Fatalf("round %d: pop = %d,%v, want %d,true", round, v, ok, next+i)
			}
		}
		if _, ok := q.TryPop(); ok {
			t.Fatalf("round %d: pop succeeded on empty queue", round)
		}
		next += q.Cap()
	}
}

func TestSPSCZeroesPoppedSlot(t *testing.T) {
	q := NewSPSC[*int](2)
	v := new(int)
	q.TryPush(v)
	if got, ok := q.TryPop(); !ok || got != v {
		t.Fatal("roundtrip failed")
	}
	for i := range q.buf {
		if q.buf[i] != nil {
			t.Fatalf("slot %d retains pointer after pop", i)
		}
	}
}

// TestSPSCStressCapacityOne hammers the smallest possible ring from two
// goroutines under -race: every element must arrive exactly once, in
// order.
func TestSPSCStressCapacityOne(t *testing.T) {
	testutil.CheckNoLeaks(t)
	const n = 100000
	q := NewSPSC[int](1)
	done := make(chan error, 1)
	go func() {
		for want := 0; want < n; {
			v, ok := q.TryPop()
			if !ok {
				runtime.Gosched()
				continue
			}
			if v != want {
				done <- errf("pop %d, want %d", v, want)
				return
			}
			want++
		}
		done <- nil
	}()
	for i := 0; i < n; {
		if q.TryPush(i) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSPSCStressWithWaiter runs the production park/signal protocol:
// the consumer spins briefly, then Prepare → re-check → block; the
// producer signals after every push. A missed wake would hang the test.
func TestSPSCStressWithWaiter(t *testing.T) {
	testutil.CheckNoLeaks(t)
	const n = 50000
	q := NewSPSC[int](8)
	w := NewWaiter()
	quit := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for want := 0; want < n; {
			v, ok := q.TryPop()
			if !ok {
				w.Prepare()
				if v, ok = q.TryPop(); !ok {
					select {
					case <-w.C():
					case <-quit:
						done <- errf("quit while waiting at %d", want)
						return
					}
					continue
				}
			}
			if v != want {
				done <- errf("pop %d, want %d", v, want)
				return
			}
			want++
		}
		done <- nil
	}()
	for i := 0; i < n; {
		if q.TryPush(i) {
			i++
			w.Signal()
		} else {
			runtime.Gosched()
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	close(quit)
}

// TestWaiterAbortWhileFull is the close-while-full teardown shape: a
// producer parks forever blocked on a full queue's consumer, and the quit
// channel — not a queue signal — must release it.
func TestWaiterAbortWhileFull(t *testing.T) {
	testutil.CheckNoLeaks(t)
	q := NewSPSC[int](1)
	if !q.TryPush(1) {
		t.Fatal("push failed")
	}
	w := NewWaiter()
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !q.TryPush(2) {
			w.Prepare()
			if q.TryPush(2) {
				return
			}
			select {
			case <-w.C():
			case <-quit:
				return
			}
		}
	}()
	close(quit)
	wg.Wait()
	if got := q.Len(); got != 1 {
		t.Fatalf("queue len after abort = %d, want 1", got)
	}
}

func TestWaiterSignalBeforePrepare(t *testing.T) {
	// A Signal with nobody armed must be a no-op (no token deposited).
	w := NewWaiter()
	w.Signal()
	select {
	case <-w.C():
		t.Fatal("unarmed Signal deposited a wake token")
	default:
	}
	// Prepare then Signal must deposit exactly one token even if signaled
	// many times.
	w.Prepare()
	w.Signal()
	w.Signal()
	w.Signal()
	select {
	case <-w.C():
	default:
		t.Fatal("armed Signal did not wake")
	}
	select {
	case <-w.C():
		t.Fatal("multiple Signals deposited multiple tokens")
	default:
	}
}

// TestMPMCStress drives the free-pool shape: several producers, several
// consumers, every element accounted for exactly once.
func TestMPMCStress(t *testing.T) {
	testutil.CheckNoLeaks(t)
	const (
		producers = 4
		consumers = 4
		perProd   = 20000
	)
	q := NewMPMC[int](8)
	var wg sync.WaitGroup
	seen := make([]int32, producers*perProd)
	var consumed sync.WaitGroup
	total := producers * perProd
	remaining := make(chan struct{})
	popped := make(chan int, 64)
	consumed.Add(1)
	go func() {
		defer consumed.Done()
		count := 0
		for v := range popped {
			seen[v]++
			count++
		}
		if count != total {
			t.Errorf("consumed %d elements, want %d", count, total)
		}
		close(remaining)
	}()
	var popWG sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < consumers; c++ {
		popWG.Add(1)
		go func() {
			defer popWG.Done()
			for {
				v, ok := q.TryPop()
				if !ok {
					select {
					case <-stop:
						// Final drain after producers finish.
						for {
							v, ok := q.TryPop()
							if !ok {
								return
							}
							popped <- v
						}
					default:
						runtime.Gosched()
						continue
					}
				}
				popped <- v
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := p*perProd + i
				for !q.TryPush(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	popWG.Wait()
	close(popped)
	consumed.Wait()
	<-remaining
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("element %d consumed %d times, want exactly once", v, n)
		}
	}
}

func TestMPMCFullAndEmpty(t *testing.T) {
	q := NewMPMC[int](2)
	if !q.TryPush(1) || !q.TryPush(2) {
		t.Fatal("fill failed")
	}
	if q.TryPush(3) {
		t.Fatal("push succeeded on full queue")
	}
	if v, ok := q.TryPop(); !ok || v != 1 {
		t.Fatalf("pop = %d,%v, want 1,true", v, ok)
	}
	if v, ok := q.TryPop(); !ok || v != 2 {
		t.Fatalf("pop = %d,%v, want 2,true", v, ok)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop succeeded on empty queue")
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
