// Package ringq provides the lock-free queues the ring hot path runs on:
// a cache-padded single-producer single-consumer ring (SPSC), a bounded
// multi-producer multi-consumer queue (MPMC, Vyukov's per-slot-sequence
// design), and the Waiter eventcount that lets a consumer park without
// putting a channel operation on every hand-off.
//
// The motivation is the per-fragment control overhead the paper amortizes
// away (§III-B): a Go channel send/receive is a mutex acquisition plus a
// potential goroutine park/unpark on EVERY hand-off, even when both sides
// are running hot. The queues here make the uncontended hand-off two
// atomic operations with no shared cache line between producer and
// consumer indexes; blocking is pushed entirely off the fast path into
// Waiter, which producers touch only when a consumer has announced it is
// about to sleep.
//
// Memory model: the Go race detector models sync/atomic operations with
// acquire/release semantics, so the slot write → index store (producer)
// and index load → slot read (consumer) pairs below are both correct
// under the Go memory model and visible to the race detector as
// synchronization — the stress tests in this package run under -race.
package ringq

import "sync/atomic"

// cacheLine is the assumed coherence granule. 64 bytes covers amd64 and
// most arm64 parts; on 128-byte-line hosts the padding is merely half as
// effective, never incorrect.
const cacheLine = 64

// pad separates index fields onto distinct cache lines so the producer's
// tail updates never invalidate the consumer's head line and vice versa
// (false sharing is the classic SPSC throughput killer).
type pad [cacheLine]byte

// SPSC is a bounded single-producer single-consumer queue. Exactly one
// goroutine may push and exactly one may pop at any moment; "one
// goroutine" may be a succession of goroutines when their lifetimes are
// ordered by other synchronization (the ring's receiver restarts are
// sequenced by a WaitGroup, so each receiver generation is a valid single
// producer).
//
// The zero value is not usable; construct with NewSPSC.
type SPSC[T any] struct {
	// mask turns an ever-increasing index into a slot number; capacity is
	// a power of two so wrap-around is a single AND. Indexes increase
	// monotonically and are compared by difference, so the arithmetic is
	// correct across uint64 overflow (FuzzSPSCIndex exercises the wrap).
	mask uint64
	buf  []T

	_ pad
	// head is the consumer cursor: the next index to pop. cachedTail is
	// the consumer's private copy of tail, refreshed only when the queue
	// looks empty — the Dean/Vyukov trick that keeps the consumer off the
	// producer's cache line in steady state.
	head       atomic.Uint64
	cachedTail uint64
	_          pad
	// tail is the producer cursor: the next index to fill. cachedHead is
	// the producer's private copy of head, refreshed only when the queue
	// looks full.
	tail       atomic.Uint64
	cachedHead uint64
	_          pad
}

// NewSPSC returns an SPSC queue holding at least capacity elements
// (rounded up to a power of two).
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &SPSC[T]{mask: uint64(n - 1), buf: make([]T, n)}
}

// Cap returns the queue's true (rounded) capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns the number of queued elements. It is exact for the calling
// side's view and approximate across concurrent use.
//
//cyclolint:hotpath
func (q *SPSC[T]) Len() int { return int(q.tail.Load() - q.head.Load()) }

// TryPush enqueues v, reporting false when the queue is full. Producer
// side only.
//
//cyclolint:hotpath
func (q *SPSC[T]) TryPush(v T) bool {
	t := q.tail.Load()
	if t-q.cachedHead >= uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if t-q.cachedHead >= uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// TryPop dequeues the oldest element, reporting false when the queue is
// empty. Consumer side only. The vacated slot is zeroed so the queue
// never retains a reference that would keep a buffer alive for the
// garbage collector.
//
//cyclolint:hotpath
func (q *SPSC[T]) TryPop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h == q.cachedTail {
		q.cachedTail = q.tail.Load()
		if h == q.cachedTail {
			return zero, false
		}
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero
	q.head.Store(h + 1)
	return v, true
}

// mpmcSlot pairs an element with its sequence number. seq == index means
// the slot is free for the producer claiming that index; seq == index+1
// means it holds that index's element for the consumer.
type mpmcSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// MPMC is a bounded multi-producer multi-consumer queue (Dmitry Vyukov's
// bounded queue: one CAS plus one sequence store per operation, no locks,
// no ABA). The ring uses it where a queue has more than one producer —
// the free-send-buffer pool is filled by the transmitter's reaper on the
// hot path and by the join loop's congestion fallbacks.
//
// The zero value is not usable; construct with NewMPMC.
type MPMC[T any] struct {
	mask  uint64
	slots []mpmcSlot[T]
	_     pad
	head  atomic.Uint64
	_     pad
	tail  atomic.Uint64
	_     pad
}

// NewMPMC returns an MPMC queue holding at least capacity elements
// (rounded up to a power of two, minimum 2: with one slot the sequence
// value t+1 would be ambiguous between "ready for the consumer at t" and
// "free for the producer at t+1" — Vyukov's design needs ≥ 2 slots).
func NewMPMC[T any](capacity int) *MPMC[T] {
	if capacity < 2 {
		capacity = 2
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	q := &MPMC[T]{mask: uint64(n - 1), slots: make([]mpmcSlot[T], n)}
	for i := range q.slots {
		q.slots[i].seq.Store(uint64(i))
	}
	return q
}

// Cap returns the queue's true (rounded) capacity.
func (q *MPMC[T]) Cap() int { return len(q.slots) }

// Len returns the approximate number of queued elements.
//
//cyclolint:hotpath
func (q *MPMC[T]) Len() int { return int(q.tail.Load() - q.head.Load()) }

// TryPush enqueues v, reporting false when the queue is full.
//
//cyclolint:hotpath
func (q *MPMC[T]) TryPush(v T) bool {
	for {
		t := q.tail.Load()
		s := &q.slots[t&q.mask]
		// Signed difference so the comparison survives index wrap-around
		// at 2^64 (an unsigned seq < t would spin forever on a full queue
		// whose tail just wrapped).
		d := int64(s.seq.Load() - t)
		switch {
		case d == 0:
			if q.tail.CompareAndSwap(t, t+1) {
				s.val = v
				s.seq.Store(t + 1)
				return true
			}
		case d < 0:
			// The slot still holds an element from one lap ago: full.
			return false
		}
		// Another producer claimed the slot between the loads; retry.
	}
}

// TryPop dequeues the oldest element, reporting false when the queue is
// empty. The vacated slot is zeroed (see SPSC.TryPop).
//
//cyclolint:hotpath
func (q *MPMC[T]) TryPop() (T, bool) {
	var zero T
	for {
		h := q.head.Load()
		s := &q.slots[h&q.mask]
		d := int64(s.seq.Load() - (h + 1))
		switch {
		case d == 0:
			if q.head.CompareAndSwap(h, h+1) {
				v := s.val
				s.val = zero
				s.seq.Store(h + uint64(len(q.slots)))
				return v, true
			}
		case d < 0:
			return zero, false
		}
	}
}

// Waiter is the parking half of an eventcount: a consumer that finds its
// queues empty arms the waiter, re-checks, and then blocks on C; a
// producer signals after every push. The producer's fast path is a single
// atomic load (armed == false while the consumer is running), so the
// per-element cost of blocking support is nil until someone actually
// sleeps — this is what replaces the channel's unconditional lock.
//
// One Waiter serves exactly one waiting goroutine, but any number of
// queues and producers may share it: the consumer simply re-checks every
// queue after waking. Spurious wakes are benign by construction.
type Waiter struct {
	armed atomic.Bool
	ch    chan struct{}
}

// NewWaiter returns a ready Waiter.
func NewWaiter() *Waiter { return &Waiter{ch: make(chan struct{}, 1)} }

// Prepare arms the waiter. Protocol: Prepare, re-check the queue(s), and
// only then block on C — a producer that pushed between the check and
// Prepare is caught by the re-check, and one that pushes after Prepare
// will Signal.
//
//cyclolint:hotpath
func (w *Waiter) Prepare() { w.armed.Store(true) }

// C returns the wake channel. Receive from it only after a Prepare whose
// re-check came up empty. A stale token from an earlier Signal causes at
// most one spurious wake.
func (w *Waiter) C() <-chan struct{} { return w.ch }

// Signal wakes the parked (or about-to-park) consumer, if any. Cheap
// when nobody is waiting: one atomic load.
//
//cyclolint:hotpath
func (w *Waiter) Signal() {
	if w.armed.Load() && w.armed.CompareAndSwap(true, false) {
		select {
		case w.ch <- struct{}{}:
		default:
		}
	}
}
