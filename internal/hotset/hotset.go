// Package hotset manages which relations live in main memory and which are
// spilled to disk — the storage discipline of §II-C: "We assume the
// combined main memory of all participating hosts to be large enough to
// hold the hot set of the database in a distributed fashion; other data may
// be kept in slower, distributed disk space."
//
// A Store holds relations under a memory budget. Registered relations stay
// resident while they fit; when the budget overflows, the least recently
// used relations spill to disk files (in the wire codec format) and are
// transparently reloaded on access. Access counts expose which relations
// are hot — the statistic a Data Cyclotron uses to decide what keeps
// circulating.
package hotset

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"cyclojoin/internal/metrics"
	"cyclojoin/internal/relation"
)

// Store instrumentation, shared by all stores in the process (the Stats
// method remains the per-store view).
var (
	mHits     = metrics.Default().Counter("hotset_hits_total", "relation lookups served from memory")
	mReloads  = metrics.Default().Counter("hotset_reloads_total", "relation lookups that reloaded a spilled relation")
	mSpills   = metrics.Default().Counter("hotset_spills_total", "relations evicted to disk")
	mResident = metrics.Default().Gauge("hotset_resident_bytes", "bytes of relations held in memory")
)

// Store is a memory-budgeted relation cache with disk spill. It is safe
// for concurrent use.
type Store struct {
	mu       sync.Mutex
	budget   int64
	resident int64
	dir      string
	entries  map[string]*entry
	// lru orders resident entries, most recently used in front.
	lru *list.List

	stats Stats
}

// Stats counts store activity.
type Stats struct {
	// Hits are Get calls served from memory.
	Hits int
	// Reloads are Get calls that had to read a spilled relation back.
	Reloads int
	// Spills counts evictions to disk.
	Spills int
}

type entry struct {
	name     string
	rel      *relation.Relation // nil while spilled
	bytes    int64
	path     string
	accesses int
	elem     *list.Element // nil while spilled
}

// New creates a store with the given in-memory budget (bytes) spilling into
// dir (created if needed).
func New(budgetBytes int64, dir string) (*Store, error) {
	if budgetBytes <= 0 {
		return nil, fmt.Errorf("hotset: budget %d", budgetBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hotset: spill dir: %w", err)
	}
	return &Store{
		budget:  budgetBytes,
		dir:     dir,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}, nil
}

// Register adds a relation under the given name. A relation larger than
// the whole budget is rejected. Re-registering a name replaces the old
// contents.
func (s *Store) Register(name string, rel *relation.Relation) error {
	if rel == nil {
		return fmt.Errorf("hotset: register %q: nil relation", name)
	}
	size := int64(rel.Bytes())
	if size > s.budget {
		return fmt.Errorf("hotset: %q (%d B) exceeds the whole memory budget (%d B)", name, size, s.budget)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[name]; ok {
		s.dropLocked(old)
	}
	e := &entry{
		name:  name,
		rel:   rel,
		bytes: size,
		path:  filepath.Join(s.dir, name+".rel"),
	}
	s.entries[name] = e
	e.elem = s.lru.PushFront(e)
	s.resident += size
	mResident.Add(size)
	return s.evictLocked()
}

// Get returns the named relation, reloading it from disk if it was
// spilled. The access marks the relation hot.
func (s *Store) Get(name string) (*relation.Relation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return nil, fmt.Errorf("hotset: unknown relation %q", name)
	}
	e.accesses++
	if e.rel != nil {
		s.stats.Hits++
		mHits.Inc()
		s.lru.MoveToFront(e.elem)
		return e.rel, nil
	}
	// Reload from the spill file.
	buf, err := os.ReadFile(e.path)
	if err != nil {
		return nil, fmt.Errorf("hotset: reload %q: %w", name, err)
	}
	frag, err := relation.Decode(buf, name)
	if err != nil {
		return nil, fmt.Errorf("hotset: reload %q: %w", name, err)
	}
	e.rel = frag.Rel
	e.elem = s.lru.PushFront(e)
	s.resident += e.bytes
	mResident.Add(e.bytes)
	s.stats.Reloads++
	mReloads.Inc()
	if err := s.evictLocked(); err != nil {
		return nil, err
	}
	return e.rel, nil
}

// evictLocked spills least-recently-used relations until the budget holds.
func (s *Store) evictLocked() error {
	for s.resident > s.budget {
		back := s.lru.Back()
		if back == nil {
			return fmt.Errorf("hotset: over budget (%d/%d B) with nothing to evict", s.resident, s.budget)
		}
		e := back.Value.(*entry)
		frag := &relation.Fragment{Rel: e.rel, Index: 0, Of: 1}
		buf, err := relation.EncodeAppend(frag, nil)
		if err != nil {
			return fmt.Errorf("hotset: spill %q: %w", e.name, err)
		}
		if err := os.WriteFile(e.path, buf, 0o644); err != nil {
			return fmt.Errorf("hotset: spill %q: %w", e.name, err)
		}
		s.lru.Remove(back)
		e.elem = nil
		e.rel = nil
		s.resident -= e.bytes
		mResident.Add(-e.bytes)
		s.stats.Spills++
		mSpills.Inc()
	}
	return nil
}

// dropLocked removes an entry entirely.
func (s *Store) dropLocked(e *entry) {
	if e.elem != nil {
		s.lru.Remove(e.elem)
		s.resident -= e.bytes
		mResident.Add(-e.bytes)
	}
	delete(s.entries, e.name)
	_ = os.Remove(e.path)
}

// Drop removes a relation from the store (memory and disk).
func (s *Store) Drop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	if !ok {
		return fmt.Errorf("hotset: unknown relation %q", name)
	}
	s.dropLocked(e)
	return nil
}

// Resident reports the bytes currently held in memory.
func (s *Store) Resident() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resident
}

// IsResident reports whether the named relation is currently in memory.
func (s *Store) IsResident(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[name]
	return ok && e.rel != nil
}

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// HotRelation describes one relation's heat for admission decisions.
type HotRelation struct {
	// Name identifies the relation.
	Name string
	// Accesses counts Get calls since registration.
	Accesses int
	// Bytes is the relation's data volume.
	Bytes int64
	// Resident reports whether it is currently in memory.
	Resident bool
}

// Hottest lists relations by access count (descending) — the candidates a
// Data Cyclotron keeps circulating in the ring's distributed memory.
func (s *Store) Hottest() []HotRelation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]HotRelation, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, HotRelation{
			Name:     e.name,
			Accesses: e.accesses,
			Bytes:    e.bytes,
			Resident: e.rel != nil,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].Name < out[j].Name
	})
	return out
}
