package hotset

import (
	"fmt"
	"sync"
	"testing"

	"cyclojoin/internal/workload"
)

func newStore(t *testing.T, budget int64) *Store {
	t.Helper()
	s, err := New(budget, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, t.TempDir()); err == nil {
		t.Error("zero budget: want error")
	}
}

func TestRegisterAndGet(t *testing.T) {
	s := newStore(t, 1<<20)
	r := workload.Sequential("r1", 1000, 4)
	if err := s.Register("r1", r); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(r) {
		t.Error("Get returned different contents")
	}
	if s.Stats().Hits != 1 {
		t.Errorf("hits = %d", s.Stats().Hits)
	}
	if _, err := s.Get("missing"); err == nil {
		t.Error("unknown name: want error")
	}
}

func TestRegisterRejectsOversized(t *testing.T) {
	s := newStore(t, 100)
	if err := s.Register("big", workload.Sequential("big", 1000, 4)); err == nil {
		t.Error("relation over the whole budget: want error")
	}
	if err := s.Register("nil", nil); err == nil {
		t.Error("nil relation: want error")
	}
}

// TestSpillAndReload: exceeding the budget spills the LRU relation; access
// reloads it transparently with identical contents.
func TestSpillAndReload(t *testing.T) {
	// Each relation: 5000 tuples × 12 B = 60 kB. Budget: 150 kB → two
	// resident at a time.
	s := newStore(t, 150_000)
	rels := make([]string, 3)
	for i := range rels {
		name := fmt.Sprintf("r%d", i)
		rels[i] = name
		if err := s.Register(name, workload.Sequential(name, 5000, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// r0 was registered first → evicted when r2 arrived.
	if s.IsResident("r0") {
		t.Error("r0 should have spilled")
	}
	if !s.IsResident("r2") {
		t.Error("r2 should be resident")
	}
	if s.Stats().Spills == 0 {
		t.Error("no spills counted")
	}
	got, err := s.Get("r0")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5000 || got.Key(4999) != 4999 {
		t.Error("reloaded relation corrupted")
	}
	if s.Stats().Reloads != 1 {
		t.Errorf("reloads = %d", s.Stats().Reloads)
	}
	// Reloading r0 must have pushed out the then-LRU resident.
	if s.Resident() > 150_000 {
		t.Errorf("resident %d exceeds budget", s.Resident())
	}
}

// TestLRUOrder: access order, not registration order, decides eviction.
func TestLRUOrder(t *testing.T) {
	s := newStore(t, 150_000)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("r%d", i)
		if err := s.Register(name, workload.Sequential(name, 5000, 4)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch r0 so r1 becomes the LRU.
	if _, err := s.Get("r0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("r2", workload.Sequential("r2", 5000, 4)); err != nil {
		t.Fatal(err)
	}
	if !s.IsResident("r0") {
		t.Error("recently used r0 was evicted")
	}
	if s.IsResident("r1") {
		t.Error("LRU r1 survived eviction")
	}
}

func TestDrop(t *testing.T) {
	s := newStore(t, 1<<20)
	if err := s.Register("r", workload.Sequential("r", 100, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Drop("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("r"); err == nil {
		t.Error("dropped relation still accessible")
	}
	if err := s.Drop("r"); err == nil {
		t.Error("double drop: want error")
	}
	if s.Resident() != 0 {
		t.Errorf("resident = %d after drop", s.Resident())
	}
}

func TestReRegisterReplaces(t *testing.T) {
	s := newStore(t, 1<<20)
	if err := s.Register("r", workload.Sequential("r", 100, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("r", workload.Sequential("r", 200, 4)); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("r")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 200 {
		t.Errorf("len = %d, want replacement's 200", got.Len())
	}
}

func TestHottestOrdering(t *testing.T) {
	s := newStore(t, 1<<20)
	for _, name := range []string{"cold", "warm", "hot"} {
		if err := s.Register(name, workload.Sequential(name, 100, 4)); err != nil {
			t.Fatal(err)
		}
	}
	touch := func(name string, times int) {
		for i := 0; i < times; i++ {
			if _, err := s.Get(name); err != nil {
				t.Fatal(err)
			}
		}
	}
	touch("hot", 5)
	touch("warm", 2)
	hotList := s.Hottest()
	if len(hotList) != 3 {
		t.Fatalf("%d entries", len(hotList))
	}
	if hotList[0].Name != "hot" || hotList[1].Name != "warm" || hotList[2].Name != "cold" {
		t.Errorf("order = %v %v %v", hotList[0].Name, hotList[1].Name, hotList[2].Name)
	}
	if hotList[0].Accesses != 5 {
		t.Errorf("hot accesses = %d", hotList[0].Accesses)
	}
}

// TestConcurrentAccess hammers the store from several goroutines while
// evictions are happening.
func TestConcurrentAccess(t *testing.T) {
	s := newStore(t, 150_000)
	const nRels = 5
	for i := 0; i < nRels; i++ {
		name := fmt.Sprintf("r%d", i)
		if err := s.Register(name, workload.Sequential(name, 5000, 4)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				name := fmt.Sprintf("r%d", (w+i)%nRels)
				got, err := s.Get(name)
				if err != nil {
					errs[w] = err
					return
				}
				if got.Len() != 5000 {
					errs[w] = fmt.Errorf("%s: len %d", name, got.Len())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if s.Resident() > 150_000 {
		t.Errorf("resident %d exceeds budget", s.Resident())
	}
}
