package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// goldenTracks/goldenSpans are a small deterministic recording: two node
// tracks, one transport track, interval + instant events.
var goldenTracks = []TrackInfo{
	{ID: 0, Node: 0, Entity: "recv"},
	{ID: 1, Node: 0, Entity: "join"},
	{ID: 2, Node: 1, Entity: "join"},
	{ID: 3, Node: NodeTransport, Entity: "memlink/1"},
}

var goldenSpans = []Span{
	{Start: 1000, Dur: 2500, Node: 0, Track: 0, Phase: PhaseReceive, Frag: 0, Hop: 1, Arg: 4096},
	{Start: 1500, Dur: 123456, Node: 0, Track: 1, Phase: PhaseJoin, Frag: 0, Hop: 1, Arg: 512},
	{Start: 2000, Dur: 777, Node: NodeTransport, Track: 3, Phase: PhaseWRSend, Frag: -1, Hop: -1, Arg: 4096, Aux: 2},
	{Start: 130000, Dur: 50000, Node: 1, Track: 2, Phase: PhaseWait, Frag: 0, Hop: 2},
	{Start: 200001, Node: 1, Track: 2, Phase: PhaseRetire, Frag: 0, Hop: 2},
}

// golden is the exact bytes WritePerfetto must emit for the fixture — the
// wire-format contract with ui.perfetto.dev and cyclotrace.
const golden = `{"displayTimeUnit":"ns","traceEvents":[
{"name":"process_name","ph":"M","pid":0,"args":{"name":"node 0"}},
{"name":"process_name","ph":"M","pid":1,"args":{"name":"node 1"}},
{"name":"process_name","ph":"M","pid":9999,"args":{"name":"transport"}},
{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"recv"}},
{"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"join"}},
{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"join"}},
{"name":"thread_name","ph":"M","pid":9999,"tid":3,"args":{"name":"memlink/1"}},
{"name":"receive","ph":"X","ts":1.000,"dur":2.500,"pid":0,"tid":0,"args":{"frag":0,"hop":1,"arg":4096,"aux":0}},
{"name":"join","ph":"X","ts":1.500,"dur":123.456,"pid":0,"tid":1,"args":{"frag":0,"hop":1,"arg":512,"aux":0}},
{"name":"wr-send","ph":"X","ts":2.000,"dur":0.777,"pid":9999,"tid":3,"args":{"frag":-1,"hop":-1,"arg":4096,"aux":2}},
{"name":"wait","ph":"X","ts":130.000,"dur":50.000,"pid":1,"tid":2,"args":{"frag":0,"hop":2,"arg":0,"aux":0}},
{"name":"retire","ph":"i","s":"t","ts":200.001,"pid":1,"tid":2,"args":{"frag":0,"hop":2,"arg":0,"aux":0}}
]}
`

func TestWritePerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, goldenTracks, goldenSpans); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != golden {
		t.Fatalf("perfetto output drifted from the golden format.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

func TestPerfettoRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, goldenTracks, goldenSpans); err != nil {
		t.Fatal(err)
	}
	tracks, spans, err := ReadPerfetto(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tracks, goldenTracks) {
		t.Fatalf("tracks round-trip mismatch:\ngot  %+v\nwant %+v", tracks, goldenTracks)
	}
	if !reflect.DeepEqual(spans, goldenSpans) {
		t.Fatalf("spans round-trip mismatch:\ngot  %+v\nwant %+v", spans, goldenSpans)
	}
}

// TestPerfettoRecorderExport drives a live recorder end to end: record,
// export, parse, and check the events survived with their correlation
// keys intact.
func TestPerfettoRecorderExport(t *testing.T) {
	rec := NewRecorder(64)
	s := rec.Shard(3, "join")
	pd := s.Begin(PhaseJoin)
	pd.Frag, pd.Hop, pd.Arg = 9, 2, 100
	s.End(pd)
	s.Point(PhaseRetire, 9, 4, 0)

	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"name":"node 3"`) {
		t.Fatalf("export lacks the node process name:\n%s", out)
	}
	tracks, spans, err := ReadPerfetto(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(tracks) != 1 || tracks[0].Entity != "join" || tracks[0].Node != 3 {
		t.Fatalf("bad tracks: %+v", tracks)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Phase != PhaseJoin || spans[0].Frag != 9 || spans[0].Hop != 2 || spans[0].Arg != 100 {
		t.Fatalf("join span lost fields: %+v", spans[0])
	}
	if spans[1].Phase != PhaseRetire || spans[1].Dur != 0 {
		t.Fatalf("retire instant lost fields: %+v", spans[1])
	}
}

// TestPerfettoSkipsUnknownEvents: forward compatibility — events with
// unrecognized names parse away cleanly.
func TestPerfettoSkipsUnknownEvents(t *testing.T) {
	in := `{"traceEvents":[
		{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"join"}},
		{"name":"mystery","ph":"X","ts":1.0,"dur":1.0,"pid":0,"tid":0},
		{"name":"join","ph":"X","ts":2.0,"dur":3.0,"pid":0,"tid":0,"args":{"frag":1,"hop":0,"arg":0,"aux":0}}
	]}`
	_, spans, err := ReadPerfetto(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Phase != PhaseJoin || spans[0].Start != 2000 || spans[0].Dur != 3000 {
		t.Fatalf("unexpected spans: %+v", spans)
	}
}
