package trace

import (
	"testing"
	"time"
)

const ms = int64(time.Millisecond)

// synthSpans builds a tidy two-node recording where the numbers are easy
// to check by hand:
//
//	node 0 join entity: wait 2ms, join 6ms, stage 2ms  (wall 10ms)
//	node 1 join entity: wait 5ms, join 4ms, stage 1ms  (wall 10ms)
//	frag 0: first join at t=2ms, retired at t=30ms     (revolution 28ms)
//	frag 1: first join at t=4ms, retired at t=24ms     (revolution 20ms)
//	aux: two wr-send spans (1ms, 3ms)
func synthSpans() []Span {
	return []Span{
		// node 0: wait |0,2) join |2,8) stage |8,10)
		{Start: 0, Dur: 2 * ms, Node: 0, Track: 0, Phase: PhaseWait, Frag: 0, Hop: 0},
		{Start: 2 * ms, Dur: 6 * ms, Node: 0, Track: 0, Phase: PhaseJoin, Frag: 0, Hop: 0},
		{Start: 8 * ms, Dur: 2 * ms, Node: 0, Track: 0, Phase: PhaseStage, Frag: 0, Hop: 0},
		// node 1: wait |0,5) join |5,9) stage |9,10)
		{Start: 0, Dur: 5 * ms, Node: 1, Track: 1, Phase: PhaseWait, Frag: 1, Hop: 0},
		{Start: 4 * ms, Dur: 4 * ms, Node: 1, Track: 1, Phase: PhaseJoin, Frag: 1, Hop: 0},
		{Start: 9 * ms, Dur: 1 * ms, Node: 1, Track: 1, Phase: PhaseStage, Frag: 1, Hop: 0},
		// overlapping receive/send spans must not affect wall or coverage
		{Start: 0, Dur: 3 * ms, Node: 0, Track: 2, Phase: PhaseReceive, Frag: 1, Hop: 0, Arg: 4096},
		{Start: 8 * ms, Dur: 3 * ms, Node: 0, Track: 3, Phase: PhaseSend, Frag: 0, Hop: 1, Arg: 4096},
		// retirements
		{Start: 30 * ms, Node: 1, Track: 1, Phase: PhaseRetire, Frag: 0, Hop: 2},
		{Start: 24 * ms, Node: 0, Track: 0, Phase: PhaseRetire, Frag: 1, Hop: 2},
		// aux transport spans (negative node)
		{Start: 1 * ms, Dur: 1 * ms, Node: NodeTransport, Track: 4, Phase: PhaseWRSend, Frag: -1, Hop: -1},
		{Start: 5 * ms, Dur: 3 * ms, Node: NodeTransport, Track: 4, Phase: PhaseWRSend, Frag: -1, Hop: -1},
	}
}

func TestAnalyzeBreakdown(t *testing.T) {
	a := Analyze(synthSpans())
	if len(a.Nodes) != 2 {
		t.Fatalf("got %d nodes, want 2", len(a.Nodes))
	}
	n0, n1 := a.Nodes[0], a.Nodes[1]
	if n0.Node != 0 || n1.Node != 1 {
		t.Fatalf("nodes out of order: %+v", a.Nodes)
	}
	if n0.Wall != 10*time.Millisecond {
		t.Fatalf("node 0 wall = %v, want 10ms", n0.Wall)
	}
	if n0.Phases[PhaseWait] != 2*time.Millisecond || n0.Phases[PhaseJoin] != 6*time.Millisecond || n0.Phases[PhaseStage] != 2*time.Millisecond {
		t.Fatalf("node 0 phases wrong: %+v", n0.Phases)
	}
	if n0.Coverage < 0.999 || n0.Coverage > 1.001 {
		t.Fatalf("node 0 coverage = %v, want ~1 (phases tile the wall clock)", n0.Coverage)
	}
	if got, want := n0.Starvation, 0.2; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("node 0 starvation = %v, want %v", got, want)
	}
	if got, want := n1.Starvation, 0.5; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("node 1 starvation = %v, want %v", got, want)
	}
	if n0.Busy != 8*time.Millisecond || n1.Busy != 5*time.Millisecond {
		t.Fatalf("busy wrong: node0=%v node1=%v", n0.Busy, n1.Busy)
	}
	if a.SlowestNode != 0 {
		t.Fatalf("slowest node = %d, want 0 (largest busy time)", a.SlowestNode)
	}
	if a.MostStarvedNode != 1 {
		t.Fatalf("most starved node = %d, want 1", a.MostStarvedNode)
	}
	// Receive/send must be reported but kept out of the wall math.
	if n0.Phases[PhaseReceive] != 3*time.Millisecond || n0.Phases[PhaseSend] != 3*time.Millisecond {
		t.Fatalf("overlapping phases lost: %+v", n0.Phases)
	}
}

func TestAnalyzeRevolutions(t *testing.T) {
	a := Analyze(synthSpans())
	if len(a.Revolutions) != 2 {
		t.Fatalf("got %d revolutions, want 2", len(a.Revolutions))
	}
	if a.Revolutions[0] != 20*time.Millisecond || a.Revolutions[1] != 28*time.Millisecond {
		t.Fatalf("revolutions = %v, want [20ms 28ms]", a.Revolutions)
	}
	if got := a.RevolutionP(50); got != 20*time.Millisecond {
		t.Fatalf("p50 = %v, want 20ms", got)
	}
	if got := a.RevolutionP(99); got != 28*time.Millisecond {
		t.Fatalf("p99 = %v, want 28ms", got)
	}
}

func TestAnalyzeAux(t *testing.T) {
	a := Analyze(synthSpans())
	if len(a.Aux) != 1 {
		t.Fatalf("got %d aux stats, want 1: %+v", len(a.Aux), a.Aux)
	}
	st := a.Aux[0]
	if st.Phase != PhaseWRSend || st.Count != 2 || st.Total != 4*time.Millisecond {
		t.Fatalf("aux stat wrong: %+v", st)
	}
	if st.P50 != 1*time.Millisecond || st.Max != 3*time.Millisecond {
		t.Fatalf("aux percentiles wrong: %+v", st)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Spans != 0 || len(a.Nodes) != 0 || len(a.Revolutions) != 0 {
		t.Fatalf("empty analysis not empty: %+v", a)
	}
	if a.SlowestNode != -1 || a.MostStarvedNode != -1 {
		t.Fatalf("empty analysis has node picks: %+v", a)
	}
	if a.RevolutionP(99) != 0 {
		t.Fatal("percentile of nothing should be 0")
	}
}
