package trace

import (
	"sync"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{FragmentReceived, "received"},
		{ProcessStart, "process-start"},
		{ProcessEnd, "process-end"},
		{FragmentSent, "sent"},
		{FragmentRetired, "retired"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestBufferRecordAndQuery(t *testing.T) {
	var b Buffer
	now := time.Now()
	b.Record(Event{Time: now, Node: 1, Kind: ProcessStart, Fragment: 7})
	b.Record(Event{Time: now, Node: 1, Kind: ProcessEnd, Fragment: 7})
	b.Record(Event{Time: now, Node: 2, Kind: FragmentSent, Fragment: 7, Bytes: 42})
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Count(ProcessStart) != 1 || b.Count(FragmentSent) != 1 {
		t.Error("Count wrong")
	}
	evs := b.Events()
	if len(evs) != 3 || evs[2].Bytes != 42 {
		t.Errorf("Events = %+v", evs)
	}
	// The returned slice is a copy.
	evs[0].Node = 99
	if b.Events()[0].Node != 1 {
		t.Error("Events exposed internal storage")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset failed")
	}
}

func TestBufferConcurrent(t *testing.T) {
	var b Buffer
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Record(Event{Node: w, Kind: ProcessStart})
			}
		}(w)
	}
	wg.Wait()
	if b.Len() != workers*per {
		t.Errorf("Len = %d, want %d", b.Len(), workers*per)
	}
}

func TestNopDiscards(t *testing.T) {
	Nop{}.Record(Event{Kind: ProcessStart}) // must not panic
}
