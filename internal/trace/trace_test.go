package trace

import (
	"sync"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{FragmentReceived, "received"},
		{ProcessStart, "process-start"},
		{ProcessEnd, "process-end"},
		{FragmentSent, "sent"},
		{FragmentRetired, "retired"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestBufferRecordAndQuery(t *testing.T) {
	var b Buffer
	now := time.Now()
	b.Record(Event{Time: now, Node: 1, Kind: ProcessStart, Fragment: 7})
	b.Record(Event{Time: now, Node: 1, Kind: ProcessEnd, Fragment: 7})
	b.Record(Event{Time: now, Node: 2, Kind: FragmentSent, Fragment: 7, Bytes: 42})
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Count(ProcessStart) != 1 || b.Count(FragmentSent) != 1 {
		t.Error("Count wrong")
	}
	evs := b.Events()
	if len(evs) != 3 || evs[2].Bytes != 42 {
		t.Errorf("Events = %+v", evs)
	}
	// The returned slice is a copy.
	evs[0].Node = 99
	if b.Events()[0].Node != 1 {
		t.Error("Events exposed internal storage")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset failed")
	}
}

func TestBufferConcurrent(t *testing.T) {
	var b Buffer
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Record(Event{Node: w, Kind: ProcessStart})
			}
		}(w)
	}
	wg.Wait()
	if b.Len() != workers*per {
		t.Errorf("Len = %d, want %d", b.Len(), workers*per)
	}
}

func TestNopDiscards(t *testing.T) {
	Nop{}.Record(Event{Kind: ProcessStart}) // must not panic
}

// TestBufferBounded: a full Buffer evicts its oldest events instead of
// growing without bound, counts the loss, and keeps Len/Count exact.
func TestBufferBounded(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		kind := ProcessStart
		if i >= 6 {
			kind = FragmentSent
		}
		b.Record(Event{Node: i, Kind: kind})
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if d := b.Dropped(); d != 6 {
		t.Fatalf("Dropped = %d, want 6", d)
	}
	evs := b.Events()
	for i, ev := range evs {
		if want := 6 + i; ev.Node != want {
			t.Fatalf("event %d is node %d, want %d (oldest-drop order violated)", i, ev.Node, want)
		}
	}
	// Counts must track evictions, not just inserts.
	if b.Count(ProcessStart) != 0 {
		t.Fatalf("Count(ProcessStart) = %d, want 0 after eviction", b.Count(ProcessStart))
	}
	if b.Count(FragmentSent) != 4 {
		t.Fatalf("Count(FragmentSent) = %d, want 4", b.Count(FragmentSent))
	}
	b.Reset()
	if b.Len() != 0 || b.Dropped() != 0 || b.Count(FragmentSent) != 0 {
		t.Fatal("Reset left state behind")
	}
}

// TestBufferZeroValueCap: the zero value stays usable and gets the
// default cap.
func TestBufferZeroValueCap(t *testing.T) {
	var b Buffer
	for i := 0; i < DefaultBufferCap+10; i++ {
		b.Record(Event{Kind: ProcessStart})
	}
	if b.Len() != DefaultBufferCap {
		t.Fatalf("Len = %d, want %d", b.Len(), DefaultBufferCap)
	}
	if b.Dropped() != 10 {
		t.Fatalf("Dropped = %d, want 10", b.Dropped())
	}
	if b.Count(ProcessStart) != DefaultBufferCap {
		t.Fatalf("Count = %d, want %d", b.Count(ProcessStart), DefaultBufferCap)
	}
}
