// Package trace provides structured event tracing for the Data Roundabout
// runtime: what the receiver, join entity and transmitter of each node did,
// and when. Production deployments feed events to their own sink; the
// in-memory Buffer supports tests and post-mortem analysis of a run
// (per-phase timing, starvation, imbalance).
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Kind classifies a runtime event.
type Kind uint8

// Ring runtime events.
const (
	// FragmentReceived: the receiver decoded a fragment off the inbound
	// link.
	FragmentReceived Kind = iota + 1
	// ProcessStart: the join entity began a fragment.
	ProcessStart
	// ProcessEnd: the join entity finished a fragment.
	ProcessEnd
	// FragmentSent: the transmitter posted a fragment to the outbound
	// link.
	FragmentSent
	// FragmentRetired: the fragment completed its revolution here.
	FragmentRetired
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case FragmentReceived:
		return "received"
	case ProcessStart:
		return "process-start"
	case ProcessEnd:
		return "process-end"
	case FragmentSent:
		return "sent"
	case FragmentRetired:
		return "retired"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one runtime occurrence.
type Event struct {
	// Time is when the event happened.
	Time time.Time
	// Node is the ring position.
	Node int
	// Kind classifies the event.
	Kind Kind
	// Fragment is the fragment index.
	Fragment int
	// Hops is the fragment's completed hop count at event time.
	Hops int
	// Bytes is the wire volume for receive/send events.
	Bytes int
}

// Tracer consumes events. Implementations must be safe for concurrent use:
// every node's three entities record independently.
type Tracer interface {
	// Record consumes one event. It must not block for long — it runs on
	// the runtime's hot paths.
	Record(ev Event)
}

// Nop discards all events.
type Nop struct{}

var _ Tracer = Nop{}

// Record implements Tracer.
func (Nop) Record(Event) {}

// Buffer accumulates events in memory. The zero value is ready to use.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

var _ Tracer = (*Buffer)(nil)

// Record implements Tracer.
func (b *Buffer) Record(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = append(b.events, ev)
}

// Events returns a copy of the recorded events in arrival order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := make([]Event, len(b.events))
	copy(cp, b.events)
	return cp
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Count tallies events of one kind.
func (b *Buffer) Count(kind Kind) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, ev := range b.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// Reset discards all recorded events.
func (b *Buffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = b.events[:0]
}
