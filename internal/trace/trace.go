// Package trace provides structured event tracing for the Data Roundabout
// runtime: what the receiver, join entity and transmitter of each node did,
// and when. Production deployments feed events to their own sink; the
// in-memory Buffer supports tests and post-mortem analysis of a run
// (per-phase timing, starvation, imbalance).
package trace

import (
	"fmt"
	"sync"
	"time"

	"cyclojoin/internal/metrics"
)

// Kind classifies a runtime event.
type Kind uint8

// Ring runtime events.
const (
	// FragmentReceived: the receiver decoded a fragment off the inbound
	// link.
	FragmentReceived Kind = iota + 1
	// ProcessStart: the join entity began a fragment.
	ProcessStart
	// ProcessEnd: the join entity finished a fragment.
	ProcessEnd
	// FragmentSent: the transmitter posted a fragment to the outbound
	// link.
	FragmentSent
	// FragmentRetired: the fragment completed its revolution here.
	FragmentRetired
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case FragmentReceived:
		return "received"
	case ProcessStart:
		return "process-start"
	case ProcessEnd:
		return "process-end"
	case FragmentSent:
		return "sent"
	case FragmentRetired:
		return "retired"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one runtime occurrence.
type Event struct {
	// Time is when the event happened.
	Time time.Time
	// Node is the ring position.
	Node int
	// Kind classifies the event.
	Kind Kind
	// Fragment is the fragment index.
	Fragment int
	// Hops is the fragment's completed hop count at event time.
	Hops int
	// Bytes is the wire volume for receive/send events.
	Bytes int
}

// Tracer consumes events. Implementations must be safe for concurrent use:
// every node's three entities record independently.
type Tracer interface {
	// Record consumes one event. It must not block for long — it runs on
	// the runtime's hot paths.
	Record(ev Event)
}

// Nop discards all events.
type Nop struct{}

var _ Tracer = Nop{}

// Record implements Tracer.
func (Nop) Record(Event) {}

// DefaultBufferCap bounds a zero-value Buffer: once full, each new event
// evicts the oldest one.
const DefaultBufferCap = 1 << 16

// mBufferDropped counts events evicted from full Buffers, process-wide.
var mBufferDropped = metrics.Default().Counter("trace_events_dropped_total", "ring trace events evicted from full trace.Buffer rings")

// Buffer accumulates recent events in a bounded ring: when full, the
// oldest event is dropped (and counted) rather than growing without
// bound — a long run keeps the most recent window instead of eating the
// heap. The zero value is ready to use with DefaultBufferCap; NewBuffer
// chooses the capacity.
type Buffer struct {
	mu sync.Mutex
	// cap is the configured capacity; 0 means DefaultBufferCap.
	cap    int
	events []Event
	// head indexes the oldest event once the ring has wrapped.
	head    int
	dropped int64
	// counts tallies retained events per kind, so Count is O(1) instead
	// of a scan under lock per call site (Kind is a uint8, so the array
	// covers every possible value).
	counts [256]int64
}

var _ Tracer = (*Buffer)(nil)

// NewBuffer returns a Buffer retaining at most capacity events
// (<=0 means DefaultBufferCap).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultBufferCap
	}
	return &Buffer{cap: capacity}
}

func (b *Buffer) capacity() int {
	if b.cap > 0 {
		return b.cap
	}
	return DefaultBufferCap
}

// Record implements Tracer. When the ring is full the oldest event is
// evicted and counted in Dropped (and trace_events_dropped_total).
//
//cyclolint:hotpath
func (b *Buffer) Record(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.events) < b.capacity() {
		// Warm-up only: the ring grows to capacity once, then every Record
		// overwrites in place.
		//cyclolint:coldpath one-time warm-up growth to the fixed capacity
		b.events = append(b.events, ev)
		b.counts[ev.Kind]++
		return
	}
	old := &b.events[b.head]
	b.counts[old.Kind]--
	b.dropped++
	mBufferDropped.Inc()
	*old = ev
	b.counts[ev.Kind]++
	b.head++
	if b.head == len(b.events) {
		b.head = 0
	}
}

// Events returns a copy of the retained events in arrival order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := make([]Event, 0, len(b.events))
	cp = append(cp, b.events[b.head:]...)
	cp = append(cp, b.events[:b.head]...)
	return cp
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Count tallies retained events of one kind in O(1).
func (b *Buffer) Count(kind Kind) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.counts[kind])
}

// Dropped returns the number of events evicted because the ring was full.
func (b *Buffer) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Reset discards all retained events and the drop count.
func (b *Buffer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = b.events[:0]
	b.head = 0
	b.dropped = 0
	b.counts = [256]int64{}
}
