package trace

import (
	"math"
	"sort"
	"time"
)

// The analyzer turns a flight recording into the paper's Fig 2/3-style
// numbers: where did each host's wall clock go, per phase; how long did a
// fragment's revolution take; which node is the ring's bottleneck and how
// much of the others' time is starvation waiting on it.

// PipelinePhases are the ring-level phases that tile a node's time. Wait,
// join and stage run on the join entity and partition its wall clock;
// receive and send run on their own entities and overlap the pipeline.
var PipelinePhases = []Phase{PhaseReceive, PhaseWait, PhaseJoin, PhaseStage, PhaseSend}

// joinEntityPhase reports whether p runs on the join-entity track (the
// phases whose sum must reconcile with that track's wall clock).
func joinEntityPhase(p Phase) bool {
	return p == PhaseWait || p == PhaseJoin || p == PhaseStage
}

// auxPhases are detail phases reported as aggregate latency stats rather
// than in the per-node wall-clock breakdown: transport work requests and
// the join algorithms' internal phases (which overlap PhaseJoin).
var auxPhases = []Phase{PhaseBuild, PhaseProbe, PhaseSort, PhaseMerge, PhaseWRSend, PhaseWRWrite, PhaseWRRecv, PhaseCreditStall, PhaseFault, PhaseRelink, PhaseAutotune}

// NodeBreakdown is one ring position's per-phase cost split.
type NodeBreakdown struct {
	Node int
	// Phases sums span durations per pipeline phase.
	Phases map[Phase]time.Duration
	// Wall is the join-entity track's extent (first wait/join/stage span
	// start to last end).
	Wall time.Duration
	// Busy is join + stage: the time the join entity made progress.
	Busy time.Duration
	// Coverage is (wait+join+stage)/Wall — how completely the recorded
	// spans account for the join entity's wall clock (should be ~1).
	Coverage float64
	// Starvation is wait/(wait+join+stage) — the share of the join
	// entity's time spent starved for data (§V-F "sync" share).
	Starvation float64
}

// PhaseStat aggregates one detail phase's span latencies.
type PhaseStat struct {
	Phase         Phase
	Count         int
	Total         time.Duration
	P50, P99, Max time.Duration
}

// Analysis is the digest cyclotrace prints.
type Analysis struct {
	// Nodes holds per-node breakdowns, sorted by node id.
	Nodes []NodeBreakdown
	// Revolutions holds one latency per completed revolution (first join
	// span of the fragment to its retirement instant), sorted ascending.
	Revolutions []time.Duration
	// Aux aggregates transport and join-internal phases.
	Aux []PhaseStat
	// SlowestNode has the largest Busy time; -1 when no node spans exist.
	SlowestNode int
	// MostStarvedNode has the largest Starvation share; -1 when absent.
	MostStarvedNode int
	// Spans is the number of spans analyzed.
	Spans int
}

// RevolutionP returns the p-th percentile (0 < p <= 100) revolution
// latency by nearest rank, or 0 when none completed.
func (a *Analysis) RevolutionP(p float64) time.Duration {
	return percentile(a.Revolutions, p)
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Analyze digests a span set (Recorder.Snapshot or ReadPerfetto order —
// any order works; spans are sorted internally).
func Analyze(spans []Span) *Analysis {
	a := &Analysis{SlowestNode: -1, MostStarvedNode: -1, Spans: len(spans)}
	if len(spans) == 0 {
		return a
	}
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })

	type nodeAcc struct {
		phases         map[Phase]time.Duration
		wallLo, wallHi int64
		haveWall       bool
	}
	nodes := make(map[int]*nodeAcc)
	acc := func(n int) *nodeAcc {
		na := nodes[n]
		if na == nil {
			na = &nodeAcc{phases: make(map[Phase]time.Duration)}
			nodes[n] = na
		}
		return na
	}
	auxDur := make(map[Phase][]time.Duration)

	// firstJoin tracks, per fragment, the start of its current revolution
	// episode: the earliest PhaseJoin span since the last retirement.
	firstJoin := make(map[int32]int64)
	var revs []time.Duration

	isAux := make(map[Phase]bool, len(auxPhases))
	for _, p := range auxPhases {
		isAux[p] = true
	}

	for _, sp := range sorted {
		switch {
		case isAux[sp.Phase]:
			auxDur[sp.Phase] = append(auxDur[sp.Phase], time.Duration(sp.Dur))
		case sp.Phase == PhaseRetire:
			if sp.Frag >= 0 {
				if start, ok := firstJoin[sp.Frag]; ok {
					revs = append(revs, time.Duration(sp.Start-start))
					delete(firstJoin, sp.Frag)
				}
			}
		case sp.Node >= 0:
			na := acc(int(sp.Node))
			na.phases[sp.Phase] += time.Duration(sp.Dur)
			if joinEntityPhase(sp.Phase) {
				if !na.haveWall || sp.Start < na.wallLo {
					na.wallLo = sp.Start
				}
				if !na.haveWall || sp.End() > na.wallHi {
					na.wallHi = sp.End()
				}
				na.haveWall = true
			}
			if sp.Phase == PhaseJoin && sp.Frag >= 0 {
				if _, ok := firstJoin[sp.Frag]; !ok {
					firstJoin[sp.Frag] = sp.Start
				}
			}
		}
	}

	// Hand the per-node totals to the shared attribution model (the same
	// one internal/health feeds live counter deltas) and graft its derived
	// ratios back onto the span-level breakdown.
	rows := make([]PhaseTotals, 0, len(nodes))
	for id, na := range nodes {
		pt := PhaseTotals{
			Node:    id,
			Receive: na.phases[PhaseReceive],
			Wait:    na.phases[PhaseWait],
			Join:    na.phases[PhaseJoin],
			Stage:   na.phases[PhaseStage],
			Send:    na.phases[PhaseSend],
		}
		if na.haveWall {
			pt.Wall = time.Duration(na.wallHi - na.wallLo)
		}
		rows = append(rows, pt)
	}
	attr := Attribute(rows)
	a.SlowestNode = attr.SlowestNode
	a.MostStarvedNode = attr.MostStarvedNode
	for _, nat := range attr.Nodes {
		a.Nodes = append(a.Nodes, NodeBreakdown{
			Node:       nat.Node,
			Phases:     nodes[nat.Node].phases,
			Wall:       nat.Wall,
			Busy:       nat.Busy,
			Coverage:   nat.Coverage,
			Starvation: nat.Starvation,
		})
	}

	sort.Slice(revs, func(i, j int) bool { return revs[i] < revs[j] })
	a.Revolutions = revs

	for _, p := range auxPhases {
		ds := auxDur[p]
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var total time.Duration
		for _, d := range ds {
			total += d
		}
		a.Aux = append(a.Aux, PhaseStat{
			Phase: p,
			Count: len(ds),
			Total: total,
			P50:   percentile(ds, 50),
			P99:   percentile(ds, 99),
			Max:   ds[len(ds)-1],
		})
	}
	return a
}
