package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Perfetto export: the Chrome trace-event JSON format, readable by
// ui.perfetto.dev and chrome://tracing. The mapping is
//
//	pid  = ring node (NodeTransport spans share transportPID),
//	tid  = recorder track (one per producing shard),
//	"X"  = complete event for interval spans (ts/dur in µs, ns precision
//	       via three decimals),
//	"i"  = instant event for Point spans,
//	"M"  = metadata naming each process ("node 3") and thread ("join").
//
// The correlation key and magnitudes travel in args, so a span clicked in
// the UI shows frag/hop/arg/aux. ReadPerfetto parses the same format back
// for cmd/cyclotrace.

// transportPID is the pid under which link-level (NodeTransport) tracks
// are grouped in the Perfetto UI.
const transportPID = 9999

func perfettoPID(node int) int {
	if node < 0 {
		return transportPID
	}
	return node
}

// WritePerfetto emits tracks and spans as Chrome trace-event JSON. Spans
// should come from Recorder.Snapshot (or ReadPerfetto); output is
// deterministic for a given input, which the golden test relies on.
func WritePerfetto(w io.Writer, tracks []TrackInfo, spans []Span) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line []byte) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.Write(line)
		return err
	}

	// Process metadata: one per distinct pid, in order of first appearance.
	seenPID := make(map[int]bool)
	for _, t := range tracks {
		pid := perfettoPID(t.Node)
		if seenPID[pid] {
			continue
		}
		seenPID[pid] = true
		name := "transport"
		if t.Node >= 0 {
			name = "node " + strconv.Itoa(t.Node)
		}
		line := fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}`, pid, strconv.Quote(name))
		if err := emit([]byte(line)); err != nil {
			return err
		}
	}
	// Thread metadata: one per track.
	for _, t := range tracks {
		line := fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			perfettoPID(t.Node), t.ID, strconv.Quote(t.Entity))
		if err := emit([]byte(line)); err != nil {
			return err
		}
	}

	var buf []byte
	for _, sp := range spans {
		buf = buf[:0]
		buf = append(buf, `{"name":`...)
		buf = strconv.AppendQuote(buf, sp.Phase.String())
		if sp.Dur > 0 {
			buf = append(buf, `,"ph":"X","ts":`...)
			buf = appendMicros(buf, sp.Start)
			buf = append(buf, `,"dur":`...)
			buf = appendMicros(buf, sp.Dur)
		} else {
			buf = append(buf, `,"ph":"i","s":"t","ts":`...)
			buf = appendMicros(buf, sp.Start)
		}
		buf = append(buf, `,"pid":`...)
		buf = strconv.AppendInt(buf, int64(perfettoPID(int(sp.Node))), 10)
		buf = append(buf, `,"tid":`...)
		buf = strconv.AppendInt(buf, int64(sp.Track), 10)
		buf = append(buf, `,"args":{"frag":`...)
		buf = strconv.AppendInt(buf, int64(sp.Frag), 10)
		buf = append(buf, `,"hop":`...)
		buf = strconv.AppendInt(buf, int64(sp.Hop), 10)
		buf = append(buf, `,"arg":`...)
		buf = strconv.AppendInt(buf, sp.Arg, 10)
		buf = append(buf, `,"aux":`...)
		buf = strconv.AppendInt(buf, sp.Aux, 10)
		buf = append(buf, `}}`...)
		if err := emit(buf); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// appendMicros formats ns as µs with three decimals (full ns precision).
func appendMicros(b []byte, ns int64) []byte {
	b = strconv.AppendInt(b, ns/1000, 10)
	b = append(b, '.')
	frac := ns % 1000
	b = append(b, byte('0'+frac/100), byte('0'+(frac/10)%10), byte('0'+frac%10))
	return b
}

// WritePerfetto exports the recorder's current snapshot.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	return WritePerfetto(w, r.Tracks(), r.Snapshot())
}

// perfettoEvent is the subset of the trace-event schema the parser reads.
type perfettoEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int32   `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		Name string `json:"name"`
		Frag *int32 `json:"frag"`
		Hop  *int32 `json:"hop"`
		Arg  *int64 `json:"arg"`
		Aux  *int64 `json:"aux"`
	} `json:"args"`
}

// ReadPerfetto parses a recording produced by WritePerfetto back into
// tracks and spans. Events with names no Phase claims are skipped, so a
// file round-trips even if a future writer adds event types.
func ReadPerfetto(r io.Reader) ([]TrackInfo, []Span, error) {
	var doc struct {
		TraceEvents []perfettoEvent `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, nil, fmt.Errorf("trace: parse perfetto json: %w", err)
	}
	byName := make(map[string]Phase, len(phaseNames))
	for p, n := range phaseNames {
		byName[n] = p
	}
	node := func(pid int) int {
		if pid == transportPID {
			return NodeTransport
		}
		return pid
	}
	var tracks []TrackInfo
	var spans []Span
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				tracks = append(tracks, TrackInfo{ID: ev.Tid, Node: node(ev.Pid), Entity: ev.Args.Name})
			}
		case "X", "i":
			phase, ok := byName[ev.Name]
			if !ok {
				continue
			}
			sp := Span{
				Start: int64(math.Round(ev.Ts * 1000)),
				Node:  int32(node(ev.Pid)),
				Track: ev.Tid,
				Phase: phase,
				Frag:  -1,
				Hop:   -1,
			}
			if ev.Ph == "X" {
				sp.Dur = int64(math.Round(ev.Dur * 1000))
				if sp.Dur <= 0 {
					sp.Dur = 1
				}
			}
			if ev.Args.Frag != nil {
				sp.Frag = *ev.Args.Frag
			}
			if ev.Args.Hop != nil {
				sp.Hop = *ev.Args.Hop
			}
			if ev.Args.Arg != nil {
				sp.Arg = *ev.Args.Arg
			}
			if ev.Args.Aux != nil {
				sp.Aux = *ev.Args.Aux
			}
			spans = append(spans, sp)
		}
	}
	return tracks, spans, nil
}
