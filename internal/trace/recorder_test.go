package trace

import (
	"fmt"
	"sync"
	"testing"
)

// TestRecorderSpanPairingConcurrent proves the sharded design never loses
// span pairing under parallel producers: every producer hammers its own
// shard, and afterwards every retained span is a completed pair (Dur >= 1)
// with the producer's own correlation key, retained counts are exact, and
// overflow shows up in Dropped rather than as corruption. Run with -race.
func TestRecorderSpanPairingConcurrent(t *testing.T) {
	const (
		producers = 8
		perProd   = 1000
		shardCap  = 512
	)
	rec := NewRecorder(shardCap)
	shards := make([]*Shard, producers)
	for i := range shards {
		shards[i] = rec.Shard(i, fmt.Sprintf("prod/%d", i))
	}
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			for k := 0; k < perProd; k++ {
				pd := s.Begin(PhaseJoin)
				pd.Frag = int32(i)
				pd.Hop = int32(k)
				pd.Arg = int64(k)
				s.End(pd)
			}
		}(i, s)
	}
	wg.Wait()

	spans := rec.Snapshot()
	if got, want := len(spans), producers*shardCap; got != want {
		t.Fatalf("retained %d spans, want %d", got, want)
	}
	if got, want := rec.Dropped(), int64(producers*(perProd-shardCap)); got != want {
		t.Fatalf("dropped %d spans, want %d", got, want)
	}
	perTrack := make(map[int32]int)
	lastStart := make(map[int32]int64)
	lastHop := make(map[int32]int32)
	for _, sp := range spans {
		if sp.Dur < 1 {
			t.Fatalf("span %+v has no duration: begin/end pairing lost", sp)
		}
		if sp.Phase != PhaseJoin {
			t.Fatalf("span %+v has wrong phase", sp)
		}
		if int32(sp.Node) != sp.Frag {
			t.Fatalf("span %+v: correlation key crossed shards (node %d, frag %d)", sp, sp.Node, sp.Frag)
		}
		if prev, ok := lastStart[sp.Track]; ok && sp.Start < prev {
			t.Fatalf("track %d spans out of order: %d after %d", sp.Track, sp.Start, prev)
		}
		if prev, ok := lastHop[sp.Track]; ok && sp.Hop != prev+1 {
			t.Fatalf("track %d lost spans inside the retained window: hop %d after %d", sp.Track, sp.Hop, prev)
		}
		lastStart[sp.Track] = sp.Start
		lastHop[sp.Track] = sp.Hop
		perTrack[sp.Track]++
	}
	for tr, n := range perTrack {
		if n != shardCap {
			t.Fatalf("track %d retained %d spans, want %d", tr, n, shardCap)
		}
	}
}

// TestRecorderDisabledIsInert: before Enable, shards are the shared no-op
// shard and record nothing; shards created after Enable are live.
func TestRecorderDisabledIsInert(t *testing.T) {
	rec := &Recorder{}
	s := rec.Shard(0, "early")
	pd := s.Begin(PhaseJoin)
	if pd.Active() {
		t.Fatal("pending from a disabled recorder is active")
	}
	s.End(pd)
	s.Point(PhaseRetire, 0, 0, 0)
	if n := len(rec.Snapshot()); n != 0 {
		t.Fatalf("disabled recorder retained %d spans", n)
	}
	rec.Enable(16)
	// The pre-Enable shard stays inert by contract...
	s.Point(PhaseRetire, 0, 0, 0)
	if n := len(rec.Snapshot()); n != 0 {
		t.Fatalf("inert shard recorded %d spans after Enable", n)
	}
	// ...but new shards record.
	live := rec.Shard(0, "late")
	if !live.Enabled() {
		t.Fatal("post-Enable shard not enabled")
	}
	pd = live.Begin(PhaseJoin)
	if !pd.Active() {
		t.Fatal("pending from an enabled recorder is inactive")
	}
	live.End(pd)
	if n := len(rec.Snapshot()); n != 1 {
		t.Fatalf("retained %d spans, want 1", n)
	}
}

// TestRecorderOverwriteOldest: a full shard drops its oldest spans, keeps
// the newest, and counts the loss.
func TestRecorderOverwriteOldest(t *testing.T) {
	rec := NewRecorder(4)
	s := rec.Shard(2, "x")
	for k := 0; k < 10; k++ {
		s.Point(PhaseRetire, int32(k), 0, 0)
	}
	spans := rec.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if want := int32(6 + i); sp.Frag != want {
			t.Fatalf("span %d is frag %d, want %d (oldest-drop violated)", i, sp.Frag, want)
		}
	}
	if d := s.Dropped(); d != 6 {
		t.Fatalf("dropped %d, want 6", d)
	}
	rec.Reset()
	if n := len(rec.Snapshot()); n != 0 {
		t.Fatalf("reset left %d spans", n)
	}
	if d := rec.Dropped(); d != 0 {
		t.Fatalf("reset left dropped=%d", d)
	}
}

// TestSpanHotPathZeroAlloc is the allocation guard the tier-1 gate runs:
// recording a begin/end pair or an instant with tracing ENABLED must not
// allocate (the benchmark BenchmarkSpanBeginEnd enforces the same bound).
func TestSpanHotPathZeroAlloc(t *testing.T) {
	rec := NewRecorder(1024)
	s := rec.Shard(0, "hot")
	if allocs := testing.AllocsPerRun(1000, func() {
		pd := s.Begin(PhaseJoin)
		pd.Frag, pd.Hop, pd.Arg = 7, 3, 4096
		s.End(pd)
	}); allocs != 0 {
		t.Fatalf("enabled begin/end allocates %.1f times per span, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Point(PhaseRetire, 7, 4, 0)
	}); allocs != 0 {
		t.Fatalf("enabled point allocates %.1f times per event, want 0", allocs)
	}
	off := Flight().Shard(0, "off") // global recorder: disabled unless a test enabled it
	if allocs := testing.AllocsPerRun(1000, func() {
		pd := off.Begin(PhaseJoin)
		off.End(pd)
	}); allocs != 0 {
		t.Fatalf("disabled begin/end allocates %.1f times per span, want 0", allocs)
	}
}

// BenchmarkSpanBeginEnd measures the enabled hot path and fails if it
// ever allocates — the flight-recorder analogue of BenchmarkForwardStage.
func BenchmarkSpanBeginEnd(b *testing.B) {
	rec := NewRecorder(4096)
	s := rec.Shard(0, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd := s.Begin(PhaseJoin)
		pd.Frag, pd.Hop, pd.Arg = 1, 2, 3
		s.End(pd)
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(1000, func() {
		pd := s.Begin(PhaseJoin)
		s.End(pd)
	}); allocs != 0 {
		b.Fatalf("span hot path allocates %.1f times per event, want 0", allocs)
	}
}

// BenchmarkSpanDisabled measures the disabled cost: one atomic load.
func BenchmarkSpanDisabled(b *testing.B) {
	rec := &Recorder{}
	s := rec.Shard(0, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pd := s.Begin(PhaseJoin)
		s.End(pd)
	}
}

// BenchmarkPoint measures the instant-event path.
func BenchmarkPoint(b *testing.B) {
	rec := NewRecorder(4096)
	s := rec.Shard(0, "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Point(PhaseRetire, 1, 2, 3)
	}
}
