package trace

import (
	"sort"
	"time"
)

// The attribution model answers "which node is the ring waiting on?" from
// per-node phase totals, independent of where those totals came from: the
// offline analyzer feeds it span sums from a flight recording, and
// internal/health feeds it deltas of the ring's hot-path counters sampled
// on a ticker. Keeping one implementation means the live verdicts and the
// cyclotrace tables can never disagree about who the straggler is.

// PhaseTotals is one node's accumulated pipeline-phase time over an
// observation interval, plus the interval's extent (Wall). Wall may be
// zero when unknown; the coverage ratio is then reported as zero.
type PhaseTotals struct {
	Node                             int
	Receive, Wait, Join, Stage, Send time.Duration
	Wall                             time.Duration
}

// NodeAttribution is one node's derived cost split.
type NodeAttribution struct {
	PhaseTotals
	// Busy is join + stage: the time the join entity made progress.
	Busy time.Duration
	// Coverage is (wait+join+stage)/Wall — how completely the totals
	// account for the join entity's wall clock (~1 for a flight
	// recording; for live samples it is the entity's duty cycle).
	Coverage float64
	// Starvation is wait/(wait+join+stage) — the share of the join
	// entity's time spent starved for data (§V-F "sync" share).
	Starvation float64
}

// Attribution ranks a set of nodes by who is slowing the ring down.
type Attribution struct {
	// Nodes holds per-node attributions, sorted by node id.
	Nodes []NodeAttribution
	// SlowestNode has the largest Busy time; -1 when no rows exist.
	// Ties keep the lowest node id.
	SlowestNode int
	// MostStarvedNode has the largest Starvation share; -1 when absent.
	MostStarvedNode int
	// StragglerScore is the slowest node's Busy divided by the mean Busy
	// of the other nodes: 1 means a balanced ring, >>1 means one node is
	// doing disproportionate work. Zero when fewer than two nodes have
	// any busy time (the ratio is meaningless).
	StragglerScore float64
}

// Attribute derives the cost split and straggler ranking from per-node
// phase totals. Rows may arrive in any order; they are sorted by node id.
func Attribute(rows []PhaseTotals) Attribution {
	a := Attribution{SlowestNode: -1, MostStarvedNode: -1}
	if len(rows) == 0 {
		return a
	}
	sorted := append([]PhaseTotals(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })

	var maxBusy time.Duration
	maxStarve := -1.0
	var busySum time.Duration
	busyNodes := 0
	for _, pt := range sorted {
		na := NodeAttribution{PhaseTotals: pt}
		entity := pt.Wait + pt.Join + pt.Stage
		na.Busy = pt.Join + pt.Stage
		if pt.Wall > 0 {
			na.Coverage = float64(entity) / float64(pt.Wall)
		}
		if entity > 0 {
			na.Starvation = float64(pt.Wait) / float64(entity)
		}
		a.Nodes = append(a.Nodes, na)
		if na.Busy > maxBusy || a.SlowestNode < 0 {
			maxBusy = na.Busy
			a.SlowestNode = pt.Node
		}
		if na.Starvation > maxStarve {
			maxStarve = na.Starvation
			a.MostStarvedNode = pt.Node
		}
		busySum += na.Busy
		if na.Busy > 0 {
			busyNodes++
		}
	}
	if busyNodes >= 2 && len(sorted) >= 2 {
		others := float64(busySum-maxBusy) / float64(len(sorted)-1)
		if others > 0 {
			a.StragglerScore = float64(maxBusy) / others
		}
	}
	return a
}
