package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the span-level layer of the trace package: where
// Buffer keeps a handful of coarse ring events, the Recorder captures
// begin/end span pairs from every layer of the stack — ring entities
// (receive/wait/join/stage/send), the transports (work-request post →
// completion, credit stalls) and the local join algorithms (build/probe,
// sort/merge) — cheaply enough to stay on in production.
//
// Design constraints, in order:
//
//   - Zero allocations and no global mutex on the hot path. Every producer
//     (one goroutine, typically) records into its own Shard: a fixed-size
//     ring of Span values guarded by a shard-local, uncontended mutex.
//     Begin reads one atomic bool and the monotonic clock; End writes one
//     Span slot. Disabled, the whole path is a single atomic load.
//   - Bounded memory. A full shard overwrites its oldest span and counts
//     the loss (Dropped); nothing grows without bound.
//   - Reconstructable revolutions. Spans carry the correlation key — the
//     fragment index and its revolution hop — so a fragment's full trip
//     around the ring can be stitched back together across nodes.
//
// Shards are created at wiring time (node construction, link construction,
// join setup), never per event. Enable the recorder *before* building the
// components to be recorded: while disabled, Shard returns a shared inert
// shard, so tests and untraced runs pay nothing — in allocations or in
// registry growth.

// DefaultShardCap is the per-producer span capacity used when Enable is
// given a non-positive cap (4096 spans ≈ 300 KB per shard).
const DefaultShardCap = 4096

// NodeTransport labels spans recorded below the ring layer (memlink and
// tcplink shards), which belong to a link rather than a ring position.
const NodeTransport = -1

// Phase classifies what a span measures. Phases 1–6 are the ring-level
// pipeline the cost-breakdown analyzer tiles a node's wall clock with;
// the rest are transport- and join-internal detail.
type Phase uint8

const (
	// PhaseReceive: receiver work from completion arrival to handing the
	// bound view to the join entity (includes procQ backpressure).
	PhaseReceive Phase = iota + 1
	// PhaseWait: the join entity starving on the transport — the paper's
	// "sync" time.
	PhaseWait
	// PhaseJoin: inside Processor.Process.
	PhaseJoin
	// PhaseStage: post-join disposition — staging the forwarded frame (or
	// materializing under congestion), releasing the receive credit,
	// queueing to the transmitter or retiring.
	PhaseStage
	// PhaseSend: transmitter residency, post → completion.
	PhaseSend
	// PhaseRetire: instant — the fragment completed its revolution here.
	PhaseRetire
	// PhaseBuild: hash-join setup (radix-cluster + table build).
	PhaseBuild
	// PhaseProbe: one hash-join worker's probe range.
	PhaseProbe
	// PhaseSort: sort-merge setup (parallel sorted copy).
	PhaseSort
	// PhaseMerge: one sort-merge worker's merge range.
	PhaseMerge
	// PhaseWRSend: a two-sided send work request, post → completion.
	PhaseWRSend
	// PhaseWRWrite: a one-sided write work request, post → completion.
	PhaseWRWrite
	// PhaseWRRecv: a posted receive buffer's residency, post → filled.
	PhaseWRRecv
	// PhaseCreditStall: a sender blocked because the receiver advertised
	// no buffer (RNR backpressure / exhausted write credits).
	PhaseCreditStall
	// PhaseFault: an injected (or detected) link fault. Instant for drops
	// and corrupted doorbells; an interval for injected delays, covering
	// the time the frame was held back.
	PhaseFault
	// PhaseRelink: ring-level link recovery, failure detection → link
	// re-established and retained frames re-routed. Arg carries the
	// number of re-dial attempts.
	PhaseRelink
	// PhaseAutotune: instant — the chunk-size autotuner recentred its
	// recommendation. Arg carries the chosen chunk size in bytes.
	PhaseAutotune
)

// phaseNames is the wire naming, shared by String and the Perfetto parser.
var phaseNames = map[Phase]string{
	PhaseReceive:     "receive",
	PhaseWait:        "wait",
	PhaseJoin:        "join",
	PhaseStage:       "stage",
	PhaseSend:        "send",
	PhaseRetire:      "retire",
	PhaseBuild:       "build",
	PhaseProbe:       "probe",
	PhaseSort:        "sort",
	PhaseMerge:       "merge",
	PhaseWRSend:      "wr-send",
	PhaseWRWrite:     "wr-write",
	PhaseWRRecv:      "wr-recv",
	PhaseCreditStall: "credit-stall",
	PhaseFault:       "fault",
	PhaseRelink:      "relink",
	PhaseAutotune:    "autotune",
}

// String implements fmt.Stringer.
func (p Phase) String() string {
	if s, ok := phaseNames[p]; ok {
		return s
	}
	return "phase(?)"
}

// Span is one recorded interval (or instant, when Dur is zero). Times are
// nanoseconds since the owning Recorder's epoch, read from the monotonic
// clock.
type Span struct {
	// Start is the span's begin time, ns since the recording epoch.
	Start int64
	// Dur is the span length in ns; zero marks an instant (Point) event.
	Dur int64
	// Node is the ring position, or NodeTransport for link-level spans.
	Node int32
	// Track identifies the producing shard (unique per Recorder).
	Track int32
	// Phase classifies the span.
	Phase Phase
	// Frag and Hop are the correlation key: the fragment index and its
	// revolution hop count. -1 when the span is not fragment-scoped.
	Frag, Hop int32
	// Arg is the span's primary magnitude: wire bytes for transport
	// spans, tuples for join spans.
	Arg int64
	// Aux is a secondary magnitude: for work-request spans, the CQ
	// backlog observed when the completion was delivered — the poll
	// batching the application sees.
	Aux int64
}

// End returns the span's end time (ns since the epoch).
func (s Span) End() int64 { return s.Start + s.Dur }

// TrackInfo names one shard for export: which node it belongs to and what
// entity produced it ("recv", "join", "send", "memlink/3", "join/probe/0").
type TrackInfo struct {
	ID     int32
	Node   int
	Entity string
}

// Recorder owns the sharded span buffers. The zero value is NOT usable —
// obtain one from NewRecorder (enabled) or Flight() (the process-wide
// recorder, inert until Enable).
type Recorder struct {
	epoch   time.Time
	enabled atomic.Bool

	mu       sync.Mutex
	shardCap int
	shards   []*Shard
	tracks   []TrackInfo
}

// flightRec is the process-wide recorder behind Flight.
var flightRec = &Recorder{epoch: time.Now()}

// Flight returns the process-wide flight recorder. It records nothing —
// and costs one atomic load per would-be event — until Enable is called.
func Flight() *Recorder { return flightRec }

// NewRecorder returns a private recorder, already enabled with the given
// per-shard span capacity (<=0 means DefaultShardCap).
func NewRecorder(shardCap int) *Recorder {
	r := &Recorder{epoch: time.Now()}
	r.Enable(shardCap)
	return r
}

// Enable turns the recorder on with the given per-shard span capacity
// (<=0 means DefaultShardCap). Shards created before Enable stay inert:
// enable the recorder before constructing the components to be traced.
// Enabling twice is a no-op.
func (r *Recorder) Enable(shardCap int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.enabled.Load() {
		return
	}
	if shardCap <= 0 {
		shardCap = DefaultShardCap
	}
	if r.epoch.IsZero() {
		// A zero-value Recorder enabled directly (tests): anchor the
		// epoch now so span timestamps stay small and monotonic.
		r.epoch = time.Now()
	}
	r.shardCap = shardCap
	r.enabled.Store(true)
}

// Enabled reports whether the recorder is capturing spans.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// Epoch is the wall-clock instant span timestamps are relative to.
func (r *Recorder) Epoch() time.Time { return r.epoch }

// now is the hot-path clock: monotonic ns since the epoch, never zero (a
// zero start is the "disabled" sentinel inside Pending).
//
//cyclolint:hotpath
func (r *Recorder) now() int64 {
	d := time.Since(r.epoch).Nanoseconds()
	if d <= 0 {
		return 1
	}
	return d
}

// Shard registers a new producer track and returns its shard. While the
// recorder is disabled it returns a shared inert shard whose operations
// are no-ops, so construction-time wiring is free for untraced runs.
// Each shard is a single-producer ring in spirit; its mutex is for the
// snapshot reader and the rare second producer (e.g. a peer-delivered
// completion) and is effectively uncontended.
func (r *Recorder) Shard(node int, entity string) *Shard {
	if !r.enabled.Load() {
		return nopShard
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := int32(len(r.tracks))
	s := &Shard{rec: r, node: int32(node), track: id, buf: make([]Span, r.shardCap)}
	r.shards = append(r.shards, s)
	r.tracks = append(r.tracks, TrackInfo{ID: id, Node: node, Entity: entity})
	return s
}

// Tracks returns the registered shard descriptors.
func (r *Recorder) Tracks() []TrackInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TrackInfo(nil), r.tracks...)
}

// Snapshot copies every retained span, merged across shards and sorted by
// start time. Cold path: it allocates freely.
func (r *Recorder) Snapshot() []Span {
	r.mu.Lock()
	shards := append([]*Shard(nil), r.shards...)
	r.mu.Unlock()
	var out []Span
	for _, s := range shards {
		s.mu.Lock()
		for i := 0; i < s.n; i++ {
			j := s.head + i
			if j >= len(s.buf) {
				j -= len(s.buf)
			}
			out = append(out, s.buf[j])
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Track < out[j].Track
	})
	return out
}

// Dropped totals spans overwritten because their shard was full.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	shards := append([]*Shard(nil), r.shards...)
	r.mu.Unlock()
	var total int64
	for _, s := range shards {
		s.mu.Lock()
		total += s.dropped
		s.mu.Unlock()
	}
	return total
}

// Reset discards every retained span and drop count; shards stay
// registered. Useful between repeated runs sharing one recorder.
func (r *Recorder) Reset() {
	r.mu.Lock()
	shards := append([]*Shard(nil), r.shards...)
	r.mu.Unlock()
	for _, s := range shards {
		s.mu.Lock()
		s.head, s.n, s.dropped = 0, 0, 0
		s.mu.Unlock()
	}
}

// Shard is one producer's bounded span ring. Methods are safe for
// concurrent use but designed for a single producing goroutine.
type Shard struct {
	rec   *Recorder
	node  int32
	track int32

	mu      sync.Mutex
	buf     []Span
	head, n int
	dropped int64
}

// nopShard is what Shard() hands out while the recorder is disabled: rec
// is nil and buf is empty, so Begin/Point/End all no-op.
var nopShard = &Shard{}

// NopShard returns the shared inert shard, for code paths that may run
// before any recorder wiring exists.
func NopShard() *Shard { return nopShard }

// Enabled reports whether spans recorded here are retained. False for the
// inert shard of a disabled recorder.
func (s *Shard) Enabled() bool { return s.rec != nil && s.rec.enabled.Load() }

// Pending is an open span returned by Begin. It is a plain value — carry
// it on the stack (or inside a work request), fill in the correlation
// fields, and hand it to End. A Pending from a disabled recorder is inert.
type Pending struct {
	start int64
	phase Phase
	// Frag and Hop are the correlation key; Begin presets them to -1.
	Frag, Hop int32
	// Arg and Aux become the span's magnitudes. A Pending is a plain
	// value owned by whichever goroutine carries it; when one rides
	// inside a work request the queue hand-off orders the accesses.
	//
	//cyclolint:sharesafe a Pending is stack-carried; cross-goroutine moves ride queue hand-offs
	Arg, Aux int64
}

// Active reports whether the span is being recorded — callers can skip
// side bookkeeping (correlation maps) for inert pendings.
func (p Pending) Active() bool { return p.start != 0 }

// Begin opens a span. Cost while enabled: one atomic load plus one
// monotonic clock read; zero allocations. While disabled: one nil check.
//
//cyclolint:hotpath
func (s *Shard) Begin(p Phase) Pending {
	if s.rec == nil || !s.rec.enabled.Load() {
		return Pending{}
	}
	return Pending{start: s.rec.now(), phase: p, Frag: -1, Hop: -1}
}

// End closes a span and records it. The duration is clamped to >=1 ns so
// interval spans are always distinguishable from Point instants (Dur 0).
//
//cyclolint:hotpath
func (s *Shard) End(pd Pending) {
	if pd.start == 0 {
		return
	}
	dur := s.rec.now() - pd.start
	if dur <= 0 {
		dur = 1
	}
	s.write(Span{Start: pd.start, Dur: dur, Phase: pd.phase, Frag: pd.Frag, Hop: pd.Hop, Arg: pd.Arg, Aux: pd.Aux})
}

// Point records an instant event (Dur 0), e.g. a fragment retirement.
//
//cyclolint:hotpath
func (s *Shard) Point(p Phase, frag, hop int32, arg int64) {
	if s.rec == nil || !s.rec.enabled.Load() {
		return
	}
	s.write(Span{Start: s.rec.now(), Phase: p, Frag: frag, Hop: hop, Arg: arg})
}

// write stores one span, overwriting the oldest when full. No allocation:
// the ring was sized at Shard creation.
//
//cyclolint:hotpath
func (s *Shard) write(sp Span) {
	sp.Node = s.node
	sp.Track = s.track
	s.mu.Lock()
	if s.n < len(s.buf) {
		i := s.head + s.n
		if i >= len(s.buf) {
			i -= len(s.buf)
		}
		s.buf[i] = sp
		s.n++
	} else if len(s.buf) > 0 {
		s.buf[s.head] = sp
		s.head++
		if s.head == len(s.buf) {
			s.head = 0
		}
		s.dropped++
	}
	s.mu.Unlock()
}

// Len returns the number of retained spans.
func (s *Shard) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Dropped returns the number of spans overwritten on this shard.
func (s *Shard) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
