package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperSchemaTupleWidth(t *testing.T) {
	s := PaperSchema("R")
	if s.TupleWidth() != PaperTupleWidth {
		t.Errorf("TupleWidth = %d, want %d", s.TupleWidth(), PaperTupleWidth)
	}
}

func TestGenerateUniform(t *testing.T) {
	r, err := Generate(Spec{Name: "R", Tuples: 10000, KeyDomain: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 10000 {
		t.Fatalf("Len = %d", r.Len())
	}
	m := Multiplicities(r)
	if len(m) != 100 {
		t.Fatalf("distinct keys = %d, want 100", len(m))
	}
	for k, c := range m {
		if k >= 100 {
			t.Errorf("key %d out of domain", k)
		}
		if c < 50 || c > 200 {
			t.Errorf("key %d multiplicity %d far from uniform expectation 100", k, c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "R", Tuples: 500, KeyDomain: 64, Zipf: 0.5, Seed: 42, PayloadWidth: 4}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same spec produced different relations")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Spec{
		{Tuples: -1},
		{Tuples: 1, PayloadWidth: -2},
		{Tuples: 1, Zipf: -0.1},
		{Tuples: 1, KeyDomain: -1},
	}
	for i, spec := range bad {
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec %d: want error", i)
		}
	}
}

func TestGenerateZeroTuples(t *testing.T) {
	r, err := Generate(Spec{Name: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

// TestZipfSkewIncreasesHotKeyShare checks the property Fig 9 relies on:
// higher z concentrates multiplicity on the hottest key.
func TestZipfSkewIncreasesHotKeyShare(t *testing.T) {
	hotShare := func(z float64) float64 {
		r, err := Generate(Spec{Name: "R", Tuples: 20000, KeyDomain: 1000, Zipf: z, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		maxC := 0
		for _, c := range Multiplicities(r) {
			if c > maxC {
				maxC = c
			}
		}
		return float64(maxC) / float64(r.Len())
	}
	s0, s5, s9 := hotShare(0.0), hotShare(0.5), hotShare(0.9)
	if !(s0 < s5 && s5 < s9) {
		t.Errorf("hot-key share not monotone in z: z=0 %.4f, z=0.5 %.4f, z=0.9 %.4f", s0, s5, s9)
	}
	if s9 < 0.01 {
		t.Errorf("z=0.9 hot share %.4f unexpectedly small", s9)
	}
}

func TestZipfSamplerBounds(t *testing.T) {
	r, err := Generate(Spec{Name: "R", Tuples: 5000, KeyDomain: 37, Zipf: 0.9, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		if r.Key(i) >= 37 {
			t.Fatalf("key %d out of domain 37", r.Key(i))
		}
	}
}

func TestZipfLargeDomainTail(t *testing.T) {
	// Domain beyond maxExact exercises the tail path.
	r, err := Generate(Spec{Name: "R", Tuples: 2000, KeyDomain: maxExact * 2, Zipf: 0.7, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		if r.Key(i) >= uint64(maxExact*2) {
			t.Fatalf("key %d out of domain", r.Key(i))
		}
	}
}

func TestExpectedMatches(t *testing.T) {
	mr := map[uint64]int{1: 2, 2: 1, 3: 4}
	ms := map[uint64]int{1: 3, 3: 2, 9: 5}
	if got, want := ExpectedMatches(mr, ms), 2*3+4*2; got != want {
		t.Errorf("ExpectedMatches = %d, want %d", got, want)
	}
}

func TestForeignKeyReferentialIntegrity(t *testing.T) {
	pk := Sequential("PK", 100, 0)
	fk, err := ForeignKey("FK", pk, 1000, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fk.Len() != 1000 {
		t.Fatalf("Len = %d", fk.Len())
	}
	valid := Multiplicities(pk)
	for i := 0; i < fk.Len(); i++ {
		if _, ok := valid[fk.Key(i)]; !ok {
			t.Fatalf("fk key %d not in primary", fk.Key(i))
		}
	}
}

func TestForeignKeyEmptyPrimary(t *testing.T) {
	pk := Sequential("PK", 0, 0)
	if _, err := ForeignKey("FK", pk, 10, 0, 1); err == nil {
		t.Error("want error for empty primary")
	}
}

func TestSequentialSorted(t *testing.T) {
	r := Sequential("S", 100, 2)
	for i := 1; i < r.Len(); i++ {
		if r.Key(i) < r.Key(i-1) {
			t.Fatal("sequential relation not sorted")
		}
	}
}

func TestZipfHistogramConservesTuples(t *testing.T) {
	f := func(zRaw, dRaw, tRaw uint16) bool {
		z := float64(zRaw%100) / 100.0
		distinct := int(dRaw%500) + 1
		tuples := int(tRaw%5000) + 1
		hist := ZipfHistogram(z, distinct, tuples)
		sum := 0
		for _, m := range hist {
			if m <= 0 {
				return false
			}
			sum += m
		}
		return sum <= tuples && sum >= tuples-distinct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestZipfHistogramMonotone(t *testing.T) {
	hist := ZipfHistogram(0.8, 1000, 100000)
	for i := 1; i < len(hist); i++ {
		if hist[i] > hist[i-1] {
			t.Fatalf("histogram not non-increasing at rank %d: %d > %d", i, hist[i], hist[i-1])
		}
	}
}

func TestZipfHistogramUniformWhenZZero(t *testing.T) {
	hist := ZipfHistogram(0, 100, 10000)
	for r, m := range hist {
		if m != 100 {
			t.Errorf("rank %d multiplicity %d, want 100", r, m)
		}
	}
}

func TestStats(t *testing.T) {
	s := Stats([]int{3, 2, 1})
	if s.Tuples != 6 || s.Distinct != 3 || s.MaxMultiplicity != 3 {
		t.Errorf("Stats = %+v", s)
	}
	if want := 9.0 + 4 + 1; math.Abs(s.SelfJoinSize-want) > 1e-9 {
		t.Errorf("SelfJoinSize = %g, want %g", s.SelfJoinSize, want)
	}
}

// TestSelfJoinSizeGrowsWithSkew checks the super-linear growth of join
// output under skew that drives the Fig 9 runtimes.
func TestSelfJoinSizeGrowsWithSkew(t *testing.T) {
	size := func(z float64) float64 {
		return Stats(ZipfHistogram(z, 10000, 1000000)).SelfJoinSize
	}
	if !(size(0.0) < size(0.6) && size(0.6) < size(0.9)) {
		t.Errorf("self-join size not monotone in z: %g %g %g", size(0.0), size(0.6), size(0.9))
	}
}
