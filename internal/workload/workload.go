// Package workload generates the synthetic join inputs used in the paper's
// evaluation (§V).
//
// The paper populates join keys with uniformly distributed integers for the
// scale experiments (Fig 7, 8, 10-12) and with Zipf-distributed keys of
// varying Zipf factor z for the skew experiment (Fig 9). Tuples are 12 bytes
// (a 4-byte key plus payload); we keep the 12-byte tuple volume by using a
// 8-byte stored key and a 4-byte payload so that "data volume" figures line
// up with the paper's GB axis labels.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"cyclojoin/internal/relation"
)

// PaperTupleWidth is the serialized tuple width used in all of the paper's
// experiments (12 bytes per tuple).
const PaperTupleWidth = 12

// PaperSchema returns a schema with the paper's 12-byte tuples.
func PaperSchema(name string) relation.Schema {
	return relation.Schema{Name: name, PayloadWidth: PaperTupleWidth - relation.KeyWidth}
}

// Spec describes a relation to generate.
type Spec struct {
	// Name is the schema name of the generated relation.
	Name string
	// Tuples is the number of tuples to generate.
	Tuples int
	// PayloadWidth is the per-tuple payload width; use PaperSchema for the
	// paper's layout.
	PayloadWidth int
	// KeyDomain is the number of distinct key values, [0, KeyDomain).
	// Zero means KeyDomain == Tuples.
	KeyDomain int
	// Zipf is the Zipf skew factor z. Zero generates uniform keys; the
	// paper sweeps z from 0 to 0.9 in Fig 9.
	Zipf float64
	// Seed seeds the deterministic generator.
	Seed int64
}

func (s Spec) domain() int {
	if s.KeyDomain > 0 {
		return s.KeyDomain
	}
	if s.Tuples > 0 {
		return s.Tuples
	}
	return 1
}

// Validate reports whether the spec is generatable.
func (s Spec) Validate() error {
	switch {
	case s.Tuples < 0:
		return fmt.Errorf("workload: %q: negative tuple count %d", s.Name, s.Tuples)
	case s.PayloadWidth < 0:
		return fmt.Errorf("workload: %q: negative payload width %d", s.Name, s.PayloadWidth)
	case s.Zipf < 0:
		return fmt.Errorf("workload: %q: negative zipf factor %g", s.Name, s.Zipf)
	case s.KeyDomain < 0:
		return fmt.Errorf("workload: %q: negative key domain %d", s.Name, s.KeyDomain)
	}
	return nil
}

// Generate materializes the relation described by the spec.
//
// Uniform keys are drawn i.i.d. from [0, KeyDomain). Zipf keys are drawn
// from rank distribution P(rank r) ∝ 1/r^z, with ranks mapped to key values
// by a pseudo-random permutation so that hot keys are not clustered at the
// low end of the domain (which would make radix partitioning look
// artificially bad or good).
func Generate(spec Spec) (*relation.Relation, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	rel := relation.New(relation.Schema{Name: spec.Name, PayloadWidth: spec.PayloadWidth}, spec.Tuples)
	domain := spec.domain()
	draw := keyDrawer(spec, rng, domain)
	pay := make([]byte, spec.PayloadWidth)
	for i := 0; i < spec.Tuples; i++ {
		for j := range pay {
			pay[j] = byte(rng.Intn(256))
		}
		if err := rel.Append(draw(), pay); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func keyDrawer(spec Spec, rng *rand.Rand, domain int) func() uint64 {
	if spec.Zipf == 0 {
		return func() uint64 { return uint64(rng.Intn(domain)) }
	}
	// rand.Zipf requires s > 1; the paper sweeps z in (0, 1), so we use our
	// own bounded-rank sampler that supports any z ≥ 0.
	z := NewZipf(rng, spec.Zipf, domain)
	perm := permuter(uint64(domain))
	return func() uint64 { return perm(z.Draw()) }
}

// permuter returns a cheap bijective map on [0, n) used to scatter Zipf
// ranks across the key domain.
func permuter(n uint64) func(uint64) uint64 {
	if n <= 1 {
		return func(r uint64) uint64 { return 0 }
	}
	return func(r uint64) uint64 {
		return (r*2654435761 + 12345) % n
	}
}

// Zipf samples ranks 0..n-1 with P(r) ∝ 1/(r+1)^z for any z ≥ 0 (the
// standard library's rand.Zipf only supports exponents > 1). It uses the
// classic rejection-free inverse-CDF method over a precomputed cumulative
// table for small domains and a two-level table for large ones.
type Zipf struct {
	rng *rand.Rand
	cdf []float64 // cumulative probability by rank, exact for len ≤ maxExact
	n   int
	z   float64
}

// maxExact bounds the size of the exact CDF table; domains larger than this
// use the table for the head and a Pareto-tail approximation for the rest.
const maxExact = 1 << 20

// NewZipf builds a sampler for ranks [0, n) with exponent z.
func NewZipf(rng *rand.Rand, z float64, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	m := n
	if m > maxExact {
		m = maxExact
	}
	cdf := make([]float64, m)
	sum := 0.0
	for r := 0; r < m; r++ {
		sum += math.Pow(float64(r+1), -z)
		cdf[r] = sum
	}
	// Tail mass beyond the exact table, approximated by the integral of
	// x^-z from m to n (exact enough for sampling purposes).
	tail := 0.0
	if n > m {
		if z == 1 {
			tail = math.Log(float64(n) / float64(m))
		} else {
			tail = (math.Pow(float64(n), 1-z) - math.Pow(float64(m), 1-z)) / (1 - z)
		}
	}
	total := sum + tail
	for r := range cdf {
		cdf[r] /= total
	}
	return &Zipf{rng: rng, cdf: cdf, n: n, z: z}
}

// Draw samples one rank.
func (zf *Zipf) Draw() uint64 {
	u := zf.rng.Float64()
	m := len(zf.cdf)
	if u <= zf.cdf[m-1] {
		// Binary search the exact table.
		lo, hi := 0, m-1
		for lo < hi {
			mid := (lo + hi) / 2
			if zf.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint64(lo)
	}
	// Tail: ranks in [m, n), approximately uniform within the tail
	// because the density is nearly flat out there for z < 1.
	return uint64(m) + uint64(zf.rng.Int63n(int64(zf.n-m)))
}

// Multiplicities returns, for each distinct key in r, the number of times it
// occurs. The skew analysis for Fig 9 is driven by this histogram.
func Multiplicities(r *relation.Relation) map[uint64]int {
	m := make(map[uint64]int, r.Len())
	for i := 0; i < r.Len(); i++ {
		m[r.Key(i)]++
	}
	return m
}

// ExpectedMatches computes |R ⋈ S| for an equi-join from the two key
// histograms — the ground truth the join tests compare against.
func ExpectedMatches(mr, ms map[uint64]int) int {
	total := 0
	for k, cr := range mr {
		if cs, ok := ms[k]; ok {
			total += cr * cs
		}
	}
	return total
}

// ForeignKey generates an S relation whose keys all reference keys present
// in the given primary relation, emulating a PK-FK join input (HadoopDB-
// style warehouse layout mentioned in §IV-A).
func ForeignKey(name string, primary *relation.Relation, tuples, payloadWidth int, seed int64) (*relation.Relation, error) {
	if primary.Len() == 0 {
		return nil, fmt.Errorf("workload: foreign key against empty primary %q", primary.Schema().Name)
	}
	rng := rand.New(rand.NewSource(seed))
	rel := relation.New(relation.Schema{Name: name, PayloadWidth: payloadWidth}, tuples)
	pay := make([]byte, payloadWidth)
	for i := 0; i < tuples; i++ {
		for j := range pay {
			pay[j] = byte(rng.Intn(256))
		}
		k := primary.Key(rng.Intn(primary.Len()))
		if err := rel.Append(k, pay); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// Sequential generates keys 0..n-1 in order (sorted input, the best case for
// sort-merge setup and a useful test fixture).
func Sequential(name string, tuples, payloadWidth int) *relation.Relation {
	rel := relation.New(relation.Schema{Name: name, PayloadWidth: payloadWidth}, tuples)
	pay := make([]byte, payloadWidth)
	for i := 0; i < tuples; i++ {
		if err := rel.Append(uint64(i), pay); err != nil {
			// Append only fails on width mismatch, which cannot happen here.
			panic(err)
		}
	}
	return rel
}
