package workload

import (
	"math"
	"testing"
)

func TestCompactZipfConservesTuples(t *testing.T) {
	for _, z := range []float64{0, 0.3, 0.6, 0.9} {
		const tuples = 1_000_000
		head, ones := CompactZipf(z, tuples, tuples)
		sum := ones
		for _, m := range head {
			sum += m
		}
		if sum != tuples {
			t.Errorf("z=%.1f: head+singletons = %d, want %d", z, sum, tuples)
		}
		if ones < 0 {
			t.Errorf("z=%.1f: negative singletons %d", z, ones)
		}
	}
}

func TestCompactZipfUniformIsAllSingletons(t *testing.T) {
	head, ones := CompactZipf(0, 50_000, 50_000)
	if len(head) != 0 || ones != 50_000 {
		t.Errorf("uniform domain=tuples: head=%d ones=%d, want 0/50000", len(head), ones)
	}
}

func TestCompactZipfHeadMonotone(t *testing.T) {
	head, _ := CompactZipf(0.9, 1_000_000, 1_000_000)
	if len(head) == 0 {
		t.Fatal("z=0.9 must have hot keys")
	}
	for i := 1; i < len(head); i++ {
		if head[i] > head[i-1] {
			t.Fatalf("head not non-increasing at %d", i)
		}
	}
	if head[0] < 100 {
		t.Errorf("hottest key multiplicity %d suspiciously small for z=0.9", head[0])
	}
}

// TestCompactZipfMatchesFullHistogram cross-checks the compact form against
// the exact per-rank histogram on a domain small enough to enumerate.
func TestCompactZipfMatchesFullHistogram(t *testing.T) {
	const distinct, tuples = 2000, 100_000
	full := ZipfHistogram(0.8, distinct, tuples)
	head, ones := CompactZipf(0.8, distinct, tuples)
	// Compare self-join sizes (the statistic the Fig 9 model depends on).
	var fullSJ, compactSJ float64
	for _, m := range full {
		fullSJ += float64(m) * float64(m)
	}
	for _, m := range head {
		compactSJ += float64(m) * float64(m)
	}
	compactSJ += float64(ones)
	if rel := math.Abs(fullSJ-compactSJ) / fullSJ; rel > 0.05 {
		t.Errorf("self-join size differs by %.1f%% between representations", rel*100)
	}
}

func TestCompactZipfDegenerate(t *testing.T) {
	if head, ones := CompactZipf(0.5, 0, 100); head != nil || ones != 0 {
		t.Error("zero domain must be empty")
	}
	if head, ones := CompactZipf(0.5, 100, 0); head != nil || ones != 0 {
		t.Error("zero tuples must be empty")
	}
}

// TestCompactZipfSmallDomainFold: more tuples than keys — the fold path
// must still conserve tuples.
func TestCompactZipfSmallDomainFold(t *testing.T) {
	head, ones := CompactZipf(0.1, 10, 1000)
	sum := ones
	for _, m := range head {
		sum += m
	}
	if sum != 1000 {
		t.Errorf("folded histogram sums to %d, want 1000", sum)
	}
	if ones > 10 {
		t.Errorf("singletons %d exceed domain 10", ones)
	}
}
