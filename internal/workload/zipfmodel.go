package workload

import "math"

// ZipfHistogram returns the deterministic expected multiplicity of each key
// rank when `tuples` draws are made from a Zipf(z) distribution over
// `distinct` ranks: multiplicity(r) = tuples · (r+1)^-z / H(distinct, z).
//
// The skew experiment (Fig 9) is run at paper scale — 36 million tuples per
// relation — through the cost model rather than by materializing the data,
// and this histogram is its input. Ranks whose expected multiplicity rounds
// to zero are truncated; the returned slice is therefore shorter than
// `distinct` for strong skew.
func ZipfHistogram(z float64, distinct, tuples int) []int {
	if distinct < 1 || tuples < 1 {
		return nil
	}
	h := 0.0
	for r := 1; r <= distinct; r++ {
		h += math.Pow(float64(r), -z)
	}
	out := make([]int, 0, min(distinct, tuples))
	assigned := 0
	for r := 1; r <= distinct && assigned < tuples; r++ {
		m := int(math.Round(float64(tuples) * math.Pow(float64(r), -z) / h))
		if m <= 0 {
			// Spread the remaining tuples one per rank; multiplicity 1 is
			// the floor for ranks that appear at all.
			m = 1
		}
		if assigned+m > tuples {
			m = tuples - assigned
		}
		out = append(out, m)
		assigned += m
	}
	return out
}

// CompactZipf returns the expected Zipf(z) key histogram at paper scale in
// a compact form: head[r] is the multiplicity of hot rank r (all ranks with
// expected multiplicity ≥ 2), and singletons is the number of remaining
// keys, each occurring once. This is what the Fig 9 cost model consumes —
// the skew experiment uses 36 million tuples per relation, far too many to
// return one slice entry per distinct key.
//
// The harmonic normalizer H(distinct, z) is computed with an exact head sum
// plus an integral tail, accurate to well under a percent for the domains
// the experiments use.
func CompactZipf(z float64, distinct, tuples int) (head []int, singletons int) {
	if distinct < 1 || tuples < 1 {
		return nil, 0
	}
	h := harmonic(distinct, z)
	c := float64(tuples) / h
	assigned := 0
	for r := 1; r <= distinct; r++ {
		m := int(math.Round(c * math.Pow(float64(r), -z)))
		if m < 2 {
			break
		}
		if assigned+m > tuples {
			m = tuples - assigned
			if m < 1 {
				break
			}
		}
		head = append(head, m)
		assigned += m
	}
	singletons = tuples - assigned
	if rem := distinct - len(head); singletons > rem {
		// More leftover tuples than leftover keys: the tail is not
		// truly singleton. Fold the excess into the last head rank so
		// the tuple count is conserved; this only triggers for small,
		// nearly uniform domains, where chain lengths are ≈ uniform
		// anyway.
		if rem > 0 {
			excess := singletons - rem
			if len(head) == 0 {
				head = append(head, 0)
			}
			head[len(head)-1] += excess
			singletons = rem
		} else {
			if len(head) == 0 {
				head = append(head, 0)
			}
			head[len(head)-1] += singletons
			singletons = 0
		}
	}
	return head, singletons
}

// harmonic approximates H(n, z) = Σ_{r=1..n} r^-z with an exact head and an
// integral tail.
func harmonic(n int, z float64) float64 {
	const exact = 100_000
	m := n
	if m > exact {
		m = exact
	}
	sum := 0.0
	for r := 1; r <= m; r++ {
		sum += math.Pow(float64(r), -z)
	}
	if n > m {
		if z == 1 {
			sum += math.Log(float64(n) / float64(m))
		} else {
			sum += (math.Pow(float64(n), 1-z) - math.Pow(float64(m), 1-z)) / (1 - z)
		}
	}
	return sum
}

// HistogramStats summarizes a multiplicity histogram for the cost model.
type HistogramStats struct {
	// Tuples is the total tuple count (sum of multiplicities).
	Tuples int
	// Distinct is the number of distinct keys.
	Distinct int
	// MaxMultiplicity is the multiplicity of the hottest key.
	MaxMultiplicity int
	// SelfJoinSize is Σ m_i² — the number of matches when a relation with
	// this histogram is equi-joined against one with the same histogram
	// (both sides drawing the same hot keys), which is how Fig 9's inputs
	// are generated.
	SelfJoinSize float64
}

// Stats computes summary statistics of a multiplicity histogram.
func Stats(hist []int) HistogramStats {
	s := HistogramStats{Distinct: len(hist)}
	for _, m := range hist {
		s.Tuples += m
		if m > s.MaxMultiplicity {
			s.MaxMultiplicity = m
		}
		s.SelfJoinSize += float64(m) * float64(m)
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
