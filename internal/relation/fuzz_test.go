package relation

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the wire decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to an equivalent fragment.
// The ring decodes frames straight off the transport, so this is the
// parser a byzantine peer would attack.
func FuzzDecode(f *testing.F) {
	// Seed with a valid frame and a few mutations.
	valid := New(Schema{Name: "R", PayloadWidth: 2}, 3)
	for _, k := range []uint64{1, 2, 3} {
		if err := valid.Append(k, []byte{byte(k), 0}); err != nil {
			f.Fatal(err)
		}
	}
	seedFrag := &Fragment{Rel: valid, Index: 1, Of: 4, Hops: 2}
	seed, err := EncodeAppend(seedFrag, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:10])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data, "fuzz")
		if err != nil {
			return // rejected, fine
		}
		// Accepted frames must round-trip.
		back, err := EncodeAppend(got, nil)
		if err != nil {
			t.Fatalf("accepted fragment does not re-encode: %v", err)
		}
		again, err := Decode(back, "fuzz")
		if err != nil {
			t.Fatalf("re-encoded fragment does not decode: %v", err)
		}
		if !again.Rel.Equal(got.Rel) || again.Index != got.Index || again.Of != got.Of {
			t.Fatal("decode/encode/decode not idempotent")
		}
	})
}
