package relation

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

// FuzzDecode hammers the wire decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode to an equivalent fragment.
// The ring decodes frames straight off the transport, so this is the
// parser a byzantine peer would attack.
func FuzzDecode(f *testing.F) {
	// Seed with a valid frame and a few mutations.
	valid := New(Schema{Name: "R", PayloadWidth: 2}, 3)
	for _, k := range []uint64{1, 2, 3} {
		if err := valid.Append(k, []byte{byte(k), 0}); err != nil {
			f.Fatal(err)
		}
	}
	seedFrag := &Fragment{Rel: valid, Index: 1, Of: 4, Hops: 2}
	seed, err := EncodeAppend(seedFrag, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:10])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data, "fuzz")
		if err != nil {
			return // rejected, fine
		}
		// Accepted frames must round-trip.
		back, err := EncodeAppend(got, nil)
		if err != nil {
			t.Fatalf("accepted fragment does not re-encode: %v", err)
		}
		again, err := Decode(back, "fuzz")
		if err != nil {
			t.Fatalf("re-encoded fragment does not decode: %v", err)
		}
		if !again.Rel.Equal(got.Rel) || again.Index != got.Index || again.Of != got.Of {
			t.Fatal("decode/encode/decode not idempotent")
		}
	})
}

// referenceDecode is the original per-tuple wire decoder, kept verbatim as
// the oracle for the bulk codec and the aliasing view: every frame must
// produce byte-identical results through all three paths.
func referenceDecode(src []byte, name string) (*Fragment, error) {
	le := binary.LittleEndian
	if len(src) < headerSize+tupleCountSize {
		return nil, fmt.Errorf("short frame (%d B)", len(src))
	}
	if m := le.Uint32(src[0:]); m != frameMagic {
		return nil, fmt.Errorf("bad magic %#x", m)
	}
	index := int(le.Uint32(src[4:]))
	of := int(le.Uint32(src[8:]))
	hops := int(le.Uint32(src[12:]))
	epoch := int(le.Uint32(src[16:]))
	width := int(le.Uint32(src[20:]))
	n := int(le.Uint64(src[24:]))
	if n < 0 || width < 0 {
		return nil, fmt.Errorf("invalid frame (n=%d width=%d)", n, width)
	}
	body := int64(len(src) - headerSize - tupleCountSize)
	if int64(n) > body/KeyWidth || int64(n)*int64(KeyWidth+width) > body {
		return nil, fmt.Errorf("truncated frame")
	}
	rel := New(Schema{Name: name, PayloadWidth: width}, n)
	off := headerSize + tupleCountSize
	for i := 0; i < n; i++ {
		rel.keys = append(rel.keys, le.Uint64(src[off:]))
		off += KeyWidth
	}
	rel.pay = append(rel.pay, src[off:off+n*width]...)
	frag := &Fragment{Rel: rel, Index: index, Of: of, Hops: hops, Epoch: epoch}
	if err := frag.Validate(); err != nil {
		return nil, err
	}
	return frag, nil
}

// fragEqual compares full fragment identity and contents.
func fragEqual(a, b *Fragment) bool {
	return a.Index == b.Index && a.Of == b.Of && a.Hops == b.Hops &&
		a.Epoch == b.Epoch && a.Rel.Equal(b.Rel)
}

// FuzzView feeds arbitrary (and hostile) frames to the in-place View and
// checks it accepts exactly what the reference per-tuple decoder accepts,
// with identical contents — on the original frame AND on a misaligned
// copy, which forces the scratch fallback past the unsafe aliasing path.
func FuzzView(f *testing.F) {
	valid := New(Schema{Name: "R", PayloadWidth: 3}, 4)
	for _, k := range []uint64{9, 8, 7, 6} {
		if err := valid.Append(k, []byte{byte(k), 1, 2}); err != nil {
			f.Fatal(err)
		}
	}
	seed, err := EncodeAppend(&Fragment{Rel: valid, Index: 2, Of: 5, Hops: 1, Epoch: 3}, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:20])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 80))

	f.Fuzz(func(t *testing.T, data []byte) {
		want, refErr := referenceDecode(data, "fuzz")

		var v View
		bindErr := v.Bind(data, "fuzz")
		if (bindErr == nil) != (refErr == nil) {
			t.Fatalf("View.Bind err=%v, reference err=%v", bindErr, refErr)
		}
		if refErr != nil {
			return
		}
		if got := v.Materialize(); !fragEqual(got, want) {
			t.Fatalf("view materializes %v, reference decodes %v", got, want)
		}
		if !bytes.Equal(v.Frame(), data[:len(v.Frame())]) {
			t.Fatal("view frame is not a prefix of the source bytes")
		}

		// Misaligned rebind: same frame at an odd offset must take the
		// portable scratch path and still agree byte-for-byte.
		shifted := make([]byte, len(data)+1)
		copy(shifted[1:], data)
		if err := v.Bind(shifted[1:], "fuzz"); err != nil {
			t.Fatalf("misaligned bind rejected a valid frame: %v", err)
		}
		if got := v.Materialize(); !fragEqual(got, want) {
			t.Fatal("misaligned view disagrees with reference decode")
		}

		// Decode (View + Materialize under the hood) must agree too.
		got, err := Decode(data, "fuzz")
		if err != nil {
			t.Fatalf("Decode rejected a frame the reference accepts: %v", err)
		}
		if !fragEqual(got, want) {
			t.Fatal("Decode disagrees with reference decode")
		}
	})
}
