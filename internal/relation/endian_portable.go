//go:build !(386 || amd64 || amd64p32 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm)

package relation

// nativeLittleEndian is false on big-endian (or unknown-endian) targets:
// the wire format stays little-endian and every key crosses through the
// portable encoding/binary path.
const nativeLittleEndian = false

// aliasUint64 always refuses on non-little-endian hosts, forcing the
// portable per-key fallback.
func aliasUint64(b []byte, n int) []uint64 { return nil }
