package relation

import (
	"encoding/binary"
	"fmt"
	"slices"
)

// Wire format of a serialized fragment, little-endian:
//
//	magic     uint32  // frameMagic
//	index     uint32
//	of        uint32
//	hops      uint32
//	epoch     uint32
//	paywidth  uint32
//	tuples    uint64
//	keys      tuples × uint64
//	payload   tuples × paywidth bytes
//
// The format is deliberately flat so that a fragment can be encoded into a
// pre-registered RDMA buffer without intermediate allocations, mirroring the
// paper's requirement that all transfer units live in statically registered
// memory (§III-C). On little-endian hosts the key region IS a []uint64: the
// codec moves it with a single bulk copy (Encode/Decode) or aliases it
// outright (View), never looping per tuple.

const frameMagic = 0xc1c70901 // "cyclotron" v1

// headerSize is the fixed prefix length of an encoded fragment.
const headerSize = 4 * 6 // five uint32 fields + magic
const tupleCountSize = 8

// hopsOffset locates the hops field inside the header — the only bytes the
// encode-free forwarding path rewrites per hop.
const hopsOffset = 12

// EncodedSize returns the number of bytes Encode will produce for f.
func EncodedSize(f *Fragment) int {
	return headerSize + tupleCountSize + f.Rel.Len()*f.Rel.schema.TupleWidth()
}

// Encode serializes f into dst, which must have room for EncodedSize(f)
// bytes, and returns the number of bytes written.
func Encode(f *Fragment, dst []byte) (int, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	need := EncodedSize(f)
	if len(dst) < need {
		return 0, fmt.Errorf("relation: encode %v: buffer %d B, need %d B", f, len(dst), need)
	}
	le := binary.LittleEndian
	le.PutUint32(dst[0:], frameMagic)
	le.PutUint32(dst[4:], uint32(f.Index))
	le.PutUint32(dst[8:], uint32(f.Of))
	le.PutUint32(dst[12:], uint32(f.Hops))
	le.PutUint32(dst[16:], uint32(f.Epoch))
	le.PutUint32(dst[20:], uint32(f.Rel.schema.PayloadWidth))
	le.PutUint64(dst[24:], uint64(f.Rel.Len()))
	off := headerSize + tupleCountSize
	n := f.Rel.Len()
	if wire := aliasUint64(dst[off:off+n*KeyWidth], n); wire != nil {
		// Bulk fast path: the destination key region reinterpreted as a
		// uint64 column, filled by one memmove.
		copy(wire, f.Rel.keys)
		off += n * KeyWidth
	} else {
		for _, k := range f.Rel.keys {
			le.PutUint64(dst[off:], k)
			off += KeyWidth
		}
	}
	off += copy(dst[off:], f.Rel.pay)
	return off, nil
}

// EncodeAppend serializes f onto dst, growing it as needed, and returns the
// extended slice. Convenience wrapper around Encode for non-registered
// buffers (tests, kernel-TCP framing, hot-set spills). The grown region is
// never zero-filled: Encode overwrites every byte it claims.
func EncodeAppend(f *Fragment, dst []byte) ([]byte, error) {
	need := EncodedSize(f)
	dst = slices.Grow(dst, need)
	start := len(dst)
	dst = dst[:start+need]
	if _, err := Encode(f, dst[start:]); err != nil {
		return nil, err
	}
	return dst, nil
}

// frameHeader is the parsed fixed prefix of an encoded fragment.
type frameHeader struct {
	index, of, hops, epoch int
	width, tuples          int
}

// parseHeader validates an encoded frame's prefix against the bytes that
// are physically present. Every check runs BEFORE anything is allocated or
// aliased: a hostile header must not be able to overflow the byte
// arithmetic or demand an enormous allocation.
func parseHeader(src []byte) (frameHeader, error) {
	var h frameHeader
	if len(src) < headerSize+tupleCountSize {
		return h, fmt.Errorf("relation: decode: short frame (%d B)", len(src))
	}
	le := binary.LittleEndian
	if m := le.Uint32(src[0:]); m != frameMagic {
		return h, fmt.Errorf("relation: decode: bad magic %#x", m)
	}
	h.index = int(le.Uint32(src[4:]))
	h.of = int(le.Uint32(src[8:]))
	h.hops = int(le.Uint32(src[12:]))
	h.epoch = int(le.Uint32(src[16:]))
	h.width = int(le.Uint32(src[20:]))
	h.tuples = int(le.Uint64(src[24:]))
	if h.tuples < 0 || h.width < 0 {
		return h, fmt.Errorf("relation: decode: invalid frame (n=%d width=%d)", h.tuples, h.width)
	}
	body := int64(len(src) - headerSize - tupleCountSize)
	if int64(h.tuples) > body/KeyWidth {
		return h, fmt.Errorf("relation: decode: frame header claims %d tuples, only %d B present", h.tuples, body)
	}
	need := int64(h.tuples) * int64(KeyWidth+h.width)
	if need > body {
		return h, fmt.Errorf("relation: decode: truncated frame: %d B body, need %d B", body, need)
	}
	return h, nil
}

// Decode deserializes a fragment from src. The schema name is applied to the
// decoded relation; the payload width is taken from the wire. The decoded
// relation owns fresh storage (no aliasing of src), so the source buffer can
// be immediately reposted for the next RDMA receive. The key column moves
// with one bulk copy on little-endian hosts; use View to skip even that.
// Exactly four allocations: the relation, its two columns, the fragment —
// a View would be a fifth, heap-escaped by its internal self-reference.
func Decode(src []byte, name string) (*Fragment, error) {
	h, err := parseHeader(src)
	if err != nil {
		return nil, err
	}
	off := headerSize + tupleCountSize
	keyBytes := src[off : off+h.tuples*KeyWidth]
	payOff := off + h.tuples*KeyWidth
	rel := New(Schema{Name: name, PayloadWidth: h.width}, h.tuples)
	if wire := aliasUint64(keyBytes, h.tuples); wire != nil {
		rel.keys = append(rel.keys, wire...)
	} else {
		// Portable path: bulk-decode the key column straight into the
		// freshly owned storage.
		le := binary.LittleEndian
		for i := 0; i < h.tuples; i++ {
			rel.keys = append(rel.keys, le.Uint64(keyBytes[i*KeyWidth:]))
		}
	}
	rel.pay = append(rel.pay, src[payOff:payOff+h.tuples*h.width]...)
	f := &Fragment{Rel: rel, Index: h.index, Of: h.of, Hops: h.hops, Epoch: h.epoch}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("relation: decode: %w", err)
	}
	return f, nil
}

// FrameHops reads the hops field of an encoded frame without decoding it.
func FrameHops(frame []byte) (int, error) {
	if err := checkFramePrefix(frame); err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(frame[hopsOffset:])), nil
}

// SetFrameHops patches the hops field of an encoded frame in place. This is
// the entire per-hop serialization work of the encode-free forwarding path:
// four bytes rewritten, everything else moves as-is.
func SetFrameHops(frame []byte, hops int) error {
	if err := checkFramePrefix(frame); err != nil {
		return err
	}
	if hops < 0 {
		return fmt.Errorf("relation: patch frame: negative hop count %d", hops)
	}
	binary.LittleEndian.PutUint32(frame[hopsOffset:], uint32(hops))
	return nil
}

// checkFramePrefix guards the in-place header accessors against frames too
// short or foreign to carry a header at all.
func checkFramePrefix(frame []byte) error {
	if len(frame) < headerSize {
		return fmt.Errorf("relation: frame too short for a header (%d B)", len(frame))
	}
	if m := binary.LittleEndian.Uint32(frame); m != frameMagic {
		return fmt.Errorf("relation: bad magic %#x", m)
	}
	return nil
}

// NativeLittleEndian reports whether this build aliases wire key columns in
// place (host byte order == wire byte order). On other hosts View falls
// back to a reusable scratch column and the bulk codec to per-key loops.
func NativeLittleEndian() bool { return nativeLittleEndian }
