package relation

import (
	"encoding/binary"
	"fmt"
)

// Wire format of a serialized fragment, little-endian:
//
//	magic     uint32  // frameMagic
//	index     uint32
//	of        uint32
//	hops      uint32
//	epoch     uint32
//	paywidth  uint32
//	tuples    uint64
//	keys      tuples × uint64
//	payload   tuples × paywidth bytes
//
// The format is deliberately flat so that a fragment can be encoded into a
// pre-registered RDMA buffer without intermediate allocations, mirroring the
// paper's requirement that all transfer units live in statically registered
// memory (§III-C).

const frameMagic = 0xc1c70901 // "cyclotron" v1

// headerSize is the fixed prefix length of an encoded fragment.
const headerSize = 4 * 6 // five uint32 fields + magic
const tupleCountSize = 8

// EncodedSize returns the number of bytes Encode will produce for f.
func EncodedSize(f *Fragment) int {
	return headerSize + tupleCountSize + f.Rel.Len()*f.Rel.schema.TupleWidth()
}

// Encode serializes f into dst, which must have room for EncodedSize(f)
// bytes, and returns the number of bytes written.
func Encode(f *Fragment, dst []byte) (int, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	need := EncodedSize(f)
	if len(dst) < need {
		return 0, fmt.Errorf("relation: encode %v: buffer %d B, need %d B", f, len(dst), need)
	}
	le := binary.LittleEndian
	le.PutUint32(dst[0:], frameMagic)
	le.PutUint32(dst[4:], uint32(f.Index))
	le.PutUint32(dst[8:], uint32(f.Of))
	le.PutUint32(dst[12:], uint32(f.Hops))
	le.PutUint32(dst[16:], uint32(f.Epoch))
	le.PutUint32(dst[20:], uint32(f.Rel.schema.PayloadWidth))
	le.PutUint64(dst[24:], uint64(f.Rel.Len()))
	off := headerSize + tupleCountSize
	for _, k := range f.Rel.keys {
		le.PutUint64(dst[off:], k)
		off += 8
	}
	off += copy(dst[off:], f.Rel.pay)
	return off, nil
}

// EncodeAppend serializes f onto dst, growing it as needed, and returns the
// extended slice. Convenience wrapper around Encode for non-registered
// buffers (tests, kernel-TCP framing).
func EncodeAppend(f *Fragment, dst []byte) ([]byte, error) {
	start := len(dst)
	need := EncodedSize(f)
	dst = append(dst, make([]byte, need)...)
	if _, err := Encode(f, dst[start:]); err != nil {
		return nil, err
	}
	return dst, nil
}

// Decode deserializes a fragment from src. The schema name is applied to the
// decoded relation; the payload width is taken from the wire. The decoded
// relation owns fresh storage (no aliasing of src), so the source buffer can
// be immediately reposted for the next RDMA receive.
func Decode(src []byte, name string) (*Fragment, error) {
	if len(src) < headerSize+tupleCountSize {
		return nil, fmt.Errorf("relation: decode: short frame (%d B)", len(src))
	}
	le := binary.LittleEndian
	if m := le.Uint32(src[0:]); m != frameMagic {
		return nil, fmt.Errorf("relation: decode: bad magic %#x", m)
	}
	f := &Fragment{
		Index: int(le.Uint32(src[4:])),
		Of:    int(le.Uint32(src[8:])),
		Hops:  int(le.Uint32(src[12:])),
		Epoch: int(le.Uint32(src[16:])),
	}
	width := int(le.Uint32(src[20:]))
	n := int(le.Uint64(src[24:]))
	if n < 0 || width < 0 {
		return nil, fmt.Errorf("relation: decode: invalid frame (n=%d width=%d)", n, width)
	}
	// Bound the claimed sizes by what the buffer physically holds BEFORE
	// allocating anything: a hostile header could otherwise overflow the
	// byte arithmetic or demand an enormous allocation.
	body := int64(len(src) - headerSize - tupleCountSize)
	if int64(n) > body/KeyWidth {
		return nil, fmt.Errorf("relation: decode: frame header claims %d tuples, only %d B present", n, body)
	}
	need := int64(n) * int64(KeyWidth+width)
	if need > body {
		return nil, fmt.Errorf("relation: decode: truncated frame: %d B body, need %d B", body, need)
	}
	rel := New(Schema{Name: name, PayloadWidth: width}, n)
	off := headerSize + tupleCountSize
	for i := 0; i < n; i++ {
		rel.keys = append(rel.keys, le.Uint64(src[off:]))
		off += 8
	}
	rel.pay = append(rel.pay, src[off:off+n*width]...)
	f.Rel = rel
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("relation: decode: %w", err)
	}
	return f, nil
}
