//go:build 386 || amd64 || amd64p32 || arm || arm64 || loong64 || mipsle || mips64le || ppc64le || riscv64 || wasm

package relation

import "unsafe"

// nativeLittleEndian marks builds where the host byte order matches the
// little-endian wire format, enabling the key-column aliasing fast path.
const nativeLittleEndian = true

// aliasUint64 reinterprets the first 8×n bytes of b as n uint64s without
// copying. It returns nil when b is not 8-byte aligned (a frame bound at an
// odd offset); callers must then fall back to the portable per-key path.
func aliasUint64(b []byte, n int) []uint64 {
	if n == 0 {
		return []uint64{}
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
}
