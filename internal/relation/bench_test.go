package relation

import (
	"testing"
)

func benchFragment(b *testing.B, tuples, width int) (*Fragment, []byte) {
	b.Helper()
	rel := New(Schema{Name: "bench", PayloadWidth: width}, tuples)
	pay := make([]byte, width)
	for i := 0; i < tuples; i++ {
		for j := range pay {
			pay[j] = byte(i + j)
		}
		if err := rel.Append(uint64(i)*2654435761, pay); err != nil {
			b.Fatal(err)
		}
	}
	frag := &Fragment{Rel: rel, Index: 0, Of: 1}
	buf := make([]byte, EncodedSize(frag))
	if _, err := Encode(frag, buf); err != nil {
		b.Fatal(err)
	}
	return frag, buf
}

func BenchmarkEncode(b *testing.B) {
	frag, buf := benchFragment(b, 8192, 8)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(frag, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	_, buf := benchFragment(b, 8192, 8)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkViewBind is the receive-side hot path: parse + alias a frame in
// place. On little-endian hosts this is header validation plus pointer
// arithmetic, independent of tuple count, with zero allocations.
func BenchmarkViewBind(b *testing.B) {
	_, buf := benchFragment(b, 8192, 8)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	var v View
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Bind(buf, "bench"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sinkKey = v.Frag().Rel.Key(0)
}

// sinkKey defeats dead-code elimination.
var sinkKey uint64
