package relation

import (
	"fmt"
	"sort"
)

// Fragment is one piece of a partitioned relation together with the ring
// metadata cyclo-join needs: which fragment it is (Index), how many
// fragments the relation was split into (Of), and how many ring hops the
// fragment has completed (Hops).
//
// In the paper's notation, the stationary relation S is partitioned into
// fragments S_i (one per host) and the rotating relation R into fragments
// R_j that travel around the Data Roundabout.
type Fragment struct {
	// Rel holds the fragment's tuples.
	Rel *Relation
	// Index is the fragment number within its relation, 0 ≤ Index < Of.
	Index int
	// Of is the total number of fragments of the relation.
	Of int
	// Hops counts completed ring hops. A fragment retires after Of hops,
	// i.e. after one full revolution in a ring of Of hosts.
	Hops int
	// Epoch distinguishes revolutions when a fragment is kept circulating
	// across several joins (setup-reuse mode).
	Epoch int
}

// Validate reports whether the fragment metadata is consistent.
func (f *Fragment) Validate() error {
	switch {
	case f.Rel == nil:
		return fmt.Errorf("relation: fragment %d/%d has nil relation", f.Index, f.Of)
	case f.Of <= 0:
		return fmt.Errorf("relation: fragment %d has non-positive fragment count %d", f.Index, f.Of)
	case f.Index < 0 || f.Index >= f.Of:
		return fmt.Errorf("relation: fragment index %d out of range [0,%d)", f.Index, f.Of)
	case f.Hops < 0:
		return fmt.Errorf("relation: fragment %d/%d has negative hop count %d", f.Index, f.Of, f.Hops)
	}
	return nil
}

// String implements fmt.Stringer.
func (f *Fragment) String() string {
	return fmt.Sprintf("fragment %d/%d of %s (hop %d)", f.Index, f.Of, f.Rel.schema.Name, f.Hops)
}

// Partition splits r into n fragments of near-equal tuple counts in input
// order (range partitioning by position, the "we do not care how the data is
// distributed" layout of §IV-A). The fragments alias r's storage.
func Partition(r *Relation, n int) ([]*Fragment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("relation: partition %q into %d fragments", r.schema.Name, n)
	}
	frags := make([]*Fragment, n)
	total := r.Len()
	for i := 0; i < n; i++ {
		lo := total * i / n
		hi := total * (i + 1) / n
		view, err := r.Slice(lo, hi)
		if err != nil {
			return nil, fmt.Errorf("relation: partition %q: %w", r.schema.Name, err)
		}
		frags[i] = &Fragment{Rel: view, Index: i, Of: n}
	}
	return frags, nil
}

// PartitionByBytes splits r into fragments whose encoded wire size is at
// most chunkBytes each (except when a single tuple already exceeds it),
// in input order. It is the bridge from a chunk-size recommendation —
// typically ring.Autotuner's — to a fragment plan: the count is derived
// from the relation's tuple width so that each frame lands near the
// requested transfer-unit size of the paper's Fig 5 sweep.
func PartitionByBytes(r *Relation, chunkBytes int) ([]*Fragment, error) {
	if chunkBytes <= 0 {
		return nil, fmt.Errorf("relation: partition %q by %d bytes", r.schema.Name, chunkBytes)
	}
	perFrag := (chunkBytes - headerSize - tupleCountSize) / r.schema.TupleWidth()
	if perFrag < 1 {
		perFrag = 1
	}
	n := (r.Len() + perFrag - 1) / perFrag
	if n < 1 {
		n = 1
	}
	return Partition(r, n)
}

// PartitionByHash splits r into n fragments by a multiplicative hash of the
// join key. Unlike Partition, co-partitioning both join inputs this way
// would make the join embarrassingly local; cyclo-join deliberately does NOT
// rely on it (ad-hoc queries, §II-C), but the generator is useful as a
// baseline and for tests.
func PartitionByHash(r *Relation, n int) ([]*Fragment, error) {
	if n <= 0 {
		return nil, fmt.Errorf("relation: hash-partition %q into %d fragments", r.schema.Name, n)
	}
	parts := make([]*Relation, n)
	for i := range parts {
		parts[i] = New(r.schema, r.Len()/n+1)
	}
	for i := 0; i < r.Len(); i++ {
		h := HashKey(r.Key(i)) % uint64(n)
		if err := parts[h].AppendFrom(r, i); err != nil {
			return nil, err
		}
	}
	frags := make([]*Fragment, n)
	for i, p := range parts {
		frags[i] = &Fragment{Rel: p, Index: i, Of: n}
	}
	return frags, nil
}

// HashKey is the multiplicative (Fibonacci) hash used for all key hashing in
// the system: radix partitioning, hash tables, and hash-based fragment
// placement all derive their buckets from it.
func HashKey(k uint64) uint64 {
	// 2^64 / golden ratio, the standard Fibonacci hashing multiplier.
	const m = 0x9e3779b97f4a7c15
	h := k * m
	// Mix high bits down so that masking low bits (radix partitioning)
	// still sees avalanche from the whole key.
	return h ^ (h >> 29)
}

// Concat materializes the union of fragments into a single fresh relation,
// in fragment-index order. All fragments must share payload width.
func Concat(schema Schema, frags []*Fragment) (*Relation, error) {
	sorted := make([]*Fragment, len(frags))
	copy(sorted, frags)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	total := 0
	for _, f := range sorted {
		if f.Rel.schema.PayloadWidth != schema.PayloadWidth {
			return nil, fmt.Errorf("%w: concat fragment %d width %d into schema width %d",
				ErrSchemaMismatch, f.Index, f.Rel.schema.PayloadWidth, schema.PayloadWidth)
		}
		total += f.Rel.Len()
	}
	out := New(schema, total)
	for _, f := range sorted {
		out.keys = append(out.keys, f.Rel.keys...)
		out.pay = append(out.pay, f.Rel.pay...)
	}
	return out, nil
}
