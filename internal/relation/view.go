package relation

import (
	"encoding/binary"
	"fmt"
)

// View is a fragment decoded in place: Bind parses the header of an encoded
// frame and mounts the key and payload columns directly over the frame's
// bytes — no per-tuple work and, in steady state, no heap allocation. On a
// ring node this is what lets the join entity probe keys and payloads
// straight out of statically registered receive memory, the paper's
// zero-copy discipline (§III-C: data copying alone accounts for ~half the
// CPU cost of a kernel TCP stack).
//
// On little-endian hosts the key column aliases the frame via an unsafe
// reinterpretation (the wire format is little-endian); misaligned frames
// and big-endian hosts transparently fall back to a scratch column that is
// reused across Bind calls, so the fallback amortizes to zero allocations
// too.
//
// A View is valid only as long as the frame bytes are: rebinding the view,
// reposting the receive buffer underneath it, or letting the frame's owner
// reuse the storage invalidates the Fragment returned by Frag. Call
// Materialize to copy the data out where ownership is genuinely needed
// (retained results, hot-set storage, shipping setup structures). A View
// must not be shared between goroutines without external synchronization.
// The fields below follow the view's owner: Bind runs in whichever
// goroutine holds the underlying receive buffer, and readers see the
// view only after the buffer hand-off (procQ, completion channel) that
// viewescape polices. The hand-off is the happens-before edge.
type View struct {
	//cyclolint:sharesafe rebound only by the buffer owner; readers follow the buffer hand-off
	frag Fragment
	//cyclolint:sharesafe rebound only by the buffer owner; readers follow the buffer hand-off
	rel Relation
	//cyclolint:sharesafe rebound only by the buffer owner; readers follow the buffer hand-off
	frame []byte
	// portable-path key storage, reused across binds
	//
	//cyclolint:sharesafe rebound only by the buffer owner; readers follow the buffer hand-off
	scratch []uint64
}

// Bind parses frame into v, replacing any previous binding. It runs all of
// Decode's hostile-header bounds checks before aliasing anything and
// rejects exactly the frames Decode rejects.
func (v *View) Bind(frame []byte, name string) error {
	h, err := parseHeader(frame)
	if err != nil {
		return err
	}
	off := headerSize + tupleCountSize
	keyBytes := frame[off : off+h.tuples*KeyWidth]
	keys := aliasUint64(keyBytes, h.tuples)
	if keys == nil {
		// Portable path: bulk-decode the key column into the reusable
		// scratch slice.
		if cap(v.scratch) < h.tuples {
			v.scratch = make([]uint64, h.tuples)
		}
		keys = v.scratch[:h.tuples]
		le := binary.LittleEndian
		for i := range keys {
			keys[i] = le.Uint64(keyBytes[i*KeyWidth:])
		}
	}
	payOff := off + h.tuples*KeyWidth
	payEnd := payOff + h.tuples*h.width
	v.frame = frame[:payEnd:payEnd]
	v.rel = Relation{
		schema: Schema{Name: name, PayloadWidth: h.width},
		keys:   keys,
		pay:    frame[payOff:payEnd:payEnd],
	}
	v.frag = Fragment{Rel: &v.rel, Index: h.index, Of: h.of, Hops: h.hops, Epoch: h.epoch}
	if err := v.frag.Validate(); err != nil {
		return fmt.Errorf("relation: decode: %w", err)
	}
	return nil
}

// Frag returns the bound fragment. The fragment and its relation alias the
// view's storage; they are invalidated by the next Bind and by the frame
// bytes being reused.
func (v *View) Frag() *Fragment { return &v.frag }

// Frame returns the encoded frame exactly as bound, trimmed to the
// fragment's true encoded size (trailing garbage past the payload is
// dropped). Forwarding a fragment unchanged is one copy of these bytes
// plus a SetFrameHops patch — no decode, no re-encode.
func (v *View) Frame() []byte { return v.frame }

// Materialize deep-copies the bound fragment into fresh storage that
// survives buffer reuse. This is the single point where the zero-copy path
// pays for ownership; everything else aliases.
func (v *View) Materialize() *Fragment {
	rel := New(v.rel.schema, len(v.rel.keys))
	rel.keys = append(rel.keys, v.rel.keys...)
	rel.pay = append(rel.pay, v.rel.pay...)
	return &Fragment{Rel: rel, Index: v.frag.Index, Of: v.frag.Of, Hops: v.frag.Hops, Epoch: v.frag.Epoch}
}
