package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionCoversAllTuples(t *testing.T) {
	r := FromKeys(Schema{Name: "R"}, seqKeys(101))
	for _, n := range []int{1, 2, 3, 6, 101, 200} {
		frags, err := Partition(r, n)
		if err != nil {
			t.Fatalf("Partition(%d): %v", n, err)
		}
		if len(frags) != n {
			t.Fatalf("Partition(%d) returned %d fragments", n, len(frags))
		}
		total := 0
		for i, f := range frags {
			if err := f.Validate(); err != nil {
				t.Errorf("fragment %d invalid: %v", i, err)
			}
			if f.Index != i || f.Of != n {
				t.Errorf("fragment %d has Index=%d Of=%d", i, f.Index, f.Of)
			}
			total += f.Rel.Len()
		}
		if total != r.Len() {
			t.Errorf("Partition(%d): fragments hold %d tuples, want %d", n, total, r.Len())
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	r := FromKeys(Schema{Name: "R"}, seqKeys(100))
	frags, err := Partition(r, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		if f.Rel.Len() < 16 || f.Rel.Len() > 17 {
			t.Errorf("fragment %d has %d tuples, want 16 or 17", f.Index, f.Rel.Len())
		}
	}
}

func TestPartitionByBytesRespectsChunk(t *testing.T) {
	r := FromKeys(Schema{Name: "R"}, seqKeys(1000))
	for _, chunk := range []int{64, 256, 1 << 10, 1 << 16, 1 << 30} {
		frags, err := PartitionByBytes(r, chunk)
		if err != nil {
			t.Fatalf("PartitionByBytes(%d): %v", chunk, err)
		}
		total := 0
		for _, f := range frags {
			total += f.Rel.Len()
			if sz := EncodedSize(f); sz > chunk && f.Rel.Len() > 1 {
				t.Errorf("chunk %d: fragment %d encodes to %d B", chunk, f.Index, sz)
			}
		}
		if total != r.Len() {
			t.Errorf("chunk %d: fragments hold %d tuples, want %d", chunk, total, r.Len())
		}
	}
	// A chunk below even one tuple's wire size still yields a valid
	// single-tuple-per-fragment plan.
	frags, err := PartitionByBytes(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != r.Len() {
		t.Errorf("1-byte chunk: %d fragments, want %d", len(frags), r.Len())
	}
	if _, err := PartitionByBytes(r, 0); err == nil {
		t.Error("PartitionByBytes(0): want error")
	}
}

func TestPartitionInvalidCount(t *testing.T) {
	r := FromKeys(Schema{Name: "R"}, seqKeys(3))
	for _, n := range []int{0, -1} {
		if _, err := Partition(r, n); err == nil {
			t.Errorf("Partition(%d): want error", n)
		}
	}
}

func TestPartitionByHashDisjointAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = uint64(rng.Intn(100))
	}
	r := FromKeys(Schema{Name: "R"}, keys)
	frags, err := PartitionByHash(r, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Every key value must land in exactly one fragment, and the multiset
	// of keys must be preserved.
	got := map[uint64]int{}
	keyFrag := map[uint64]int{}
	for _, f := range frags {
		for i := 0; i < f.Rel.Len(); i++ {
			k := f.Rel.Key(i)
			got[k]++
			if prev, ok := keyFrag[k]; ok && prev != f.Index {
				t.Fatalf("key %d appears in fragments %d and %d", k, prev, f.Index)
			}
			keyFrag[k] = f.Index
		}
	}
	want := map[uint64]int{}
	for _, k := range keys {
		want[k]++
	}
	for k, c := range want {
		if got[k] != c {
			t.Errorf("key %d count = %d, want %d", k, got[k], c)
		}
	}
}

// TestPartitionConcatRoundTrip is the multiset-preservation property the
// ring depends on: splitting and re-concatenating must be the identity.
func TestPartitionConcatRoundTrip(t *testing.T) {
	f := func(rawKeys []uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		r := FromKeys(Schema{Name: "R"}, rawKeys)
		frags, err := Partition(r, n)
		if err != nil {
			return false
		}
		back, err := Concat(r.Schema(), frags)
		if err != nil {
			return false
		}
		return back.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFragmentValidate(t *testing.T) {
	rel := FromKeys(Schema{Name: "R"}, seqKeys(1))
	tests := []struct {
		name    string
		f       Fragment
		wantErr bool
	}{
		{"ok", Fragment{Rel: rel, Index: 0, Of: 1}, false},
		{"nil rel", Fragment{Of: 1}, true},
		{"bad of", Fragment{Rel: rel, Of: 0}, true},
		{"index out of range", Fragment{Rel: rel, Index: 2, Of: 2}, true},
		{"negative hops", Fragment{Rel: rel, Of: 1, Hops: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.f.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func seqKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	return keys
}
