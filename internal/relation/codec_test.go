package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomFragment(rng *rand.Rand, width, n int) *Fragment {
	rel := New(Schema{Name: "T", PayloadWidth: width}, n)
	pay := make([]byte, width)
	for i := 0; i < n; i++ {
		for j := range pay {
			pay[j] = byte(rng.Intn(256))
		}
		if err := rel.Append(rng.Uint64(), pay); err != nil {
			panic(err)
		}
	}
	of := rng.Intn(8) + 1
	return &Fragment{Rel: rel, Index: rng.Intn(of), Of: of, Hops: rng.Intn(of), Epoch: rng.Intn(4)}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		f := randomFragment(rng, rng.Intn(16), rng.Intn(50))
		buf := make([]byte, EncodedSize(f))
		n, err := Encode(f, buf)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("Encode wrote %d, EncodedSize said %d", n, len(buf))
		}
		got, err := Decode(buf, "T")
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got.Index != f.Index || got.Of != f.Of || got.Hops != f.Hops || got.Epoch != f.Epoch {
			t.Fatalf("metadata mismatch: got %+v want %+v", got, f)
		}
		if !got.Rel.Equal(f.Rel) {
			t.Fatal("relation contents differ after round trip")
		}
	}
}

// TestCodecRoundTripProperty exercises the codec with quick-generated keys.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(keys []uint64, idxRaw, ofRaw uint8) bool {
		of := int(ofRaw%7) + 1
		frag := &Fragment{
			Rel:   FromKeys(Schema{Name: "Q"}, keys),
			Index: int(idxRaw) % of,
			Of:    of,
		}
		buf, err := EncodeAppend(frag, nil)
		if err != nil {
			return false
		}
		got, err := Decode(buf, "Q")
		if err != nil {
			return false
		}
		return got.Rel.Equal(frag.Rel) && got.Index == frag.Index && got.Of == frag.Of
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeShortBuffer(t *testing.T) {
	frag := &Fragment{Rel: FromKeys(Schema{Name: "R"}, []uint64{1, 2}), Index: 0, Of: 1}
	buf := make([]byte, EncodedSize(frag)-1)
	if _, err := Encode(frag, buf); err == nil {
		t.Error("Encode into short buffer: want error")
	}
}

func TestDecodeCorruption(t *testing.T) {
	frag := &Fragment{Rel: FromKeys(Schema{Name: "R"}, []uint64{1, 2, 3}), Index: 1, Of: 4}
	buf, err := EncodeAppend(frag, nil)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short header", func(b []byte) []byte { return b[:10] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-4] }},
		{"index out of range", func(b []byte) []byte { b[4] = 200; return b }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cp := append([]byte(nil), buf...)
			if _, err := Decode(tt.mut(cp), "R"); err == nil {
				t.Error("Decode of corrupted frame: want error")
			}
		})
	}
}

func TestDecodeDoesNotAliasSource(t *testing.T) {
	frag := &Fragment{Rel: FromKeys(Schema{Name: "R", PayloadWidth: 0}, []uint64{42}), Index: 0, Of: 1}
	buf, err := EncodeAppend(frag, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(buf, "R")
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xee // clobber, as reposting the RDMA buffer would
	}
	if got.Rel.Key(0) != 42 {
		t.Error("decoded fragment aliases source buffer")
	}
}
