// Package relation implements the columnar in-memory relation storage used
// throughout the cyclo-join system.
//
// The paper's workloads are narrow tuples: a 4-byte join key plus a small
// fixed-width payload (12 bytes per tuple in most experiments). We store a
// relation column-wise — one slice of join keys plus one contiguous byte
// slice of fixed-width payloads — which matches the MonetDB heritage of the
// paper's join implementations and keeps fragments trivially serializable
// for transport around the Data Roundabout ring.
package relation

import (
	"errors"
	"fmt"
)

// Schema describes the physical layout of a relation's tuples.
//
// Every tuple consists of one uint64 join key and PayloadWidth bytes of
// opaque payload. The paper uses 4-byte keys; we widen keys to uint64 so the
// same code handles larger key domains (band joins over timestamps, etc.)
// without a second code path.
type Schema struct {
	// Name identifies the relation in diagnostics and traces.
	Name string
	// PayloadWidth is the number of payload bytes per tuple. Zero is valid
	// (key-only relations).
	PayloadWidth int
}

// KeyWidth is the serialized width of a join key in bytes.
const KeyWidth = 8

// TupleWidth returns the serialized width of one tuple.
func (s Schema) TupleWidth() int { return KeyWidth + s.PayloadWidth }

// Validate reports whether the schema is usable.
func (s Schema) Validate() error {
	if s.PayloadWidth < 0 {
		return fmt.Errorf("relation: schema %q: negative payload width %d", s.Name, s.PayloadWidth)
	}
	return nil
}

// ErrSchemaMismatch is returned when two relations that must share a layout
// do not.
var ErrSchemaMismatch = errors.New("relation: schema mismatch")

// Relation is an in-memory columnar table: a slice of join keys and a
// parallel, contiguous payload area.
//
// A Relation is also used for the fragments R_j and S_i that cyclo-join
// operates on; Fragment wraps a Relation with ring metadata.
type Relation struct {
	schema Schema
	keys   []uint64
	pay    []byte // len == len(keys)*schema.PayloadWidth
}

// New returns an empty relation with the given schema and capacity hint.
func New(schema Schema, capacity int) *Relation {
	if capacity < 0 {
		capacity = 0
	}
	return &Relation{
		schema: schema,
		keys:   make([]uint64, 0, capacity),
		pay:    make([]byte, 0, capacity*schema.PayloadWidth),
	}
}

// FromKeys builds a relation with the given keys and zeroed payloads.
func FromKeys(schema Schema, keys []uint64) *Relation {
	r := New(schema, len(keys))
	r.keys = append(r.keys, keys...)
	r.pay = make([]byte, len(keys)*schema.PayloadWidth)
	return r
}

// Wrap adopts existing column storage without copying. The payload slice
// length must equal len(keys)*schema.PayloadWidth.
func Wrap(schema Schema, keys []uint64, pay []byte) (*Relation, error) {
	if len(pay) != len(keys)*schema.PayloadWidth {
		return nil, fmt.Errorf("relation: wrap %q: payload length %d does not match %d tuples × width %d",
			schema.Name, len(pay), len(keys), schema.PayloadWidth)
	}
	return &Relation{schema: schema, keys: keys, pay: pay}, nil
}

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.keys) }

// Bytes returns the total serialized payload-plus-key volume of the
// relation. This is the "data volume" quantity the paper's figures use.
func (r *Relation) Bytes() int { return len(r.keys) * r.schema.TupleWidth() }

// Key returns the join key of tuple i.
func (r *Relation) Key(i int) uint64 { return r.keys[i] }

// Keys returns the key column. Callers must not modify it.
func (r *Relation) Keys() []uint64 { return r.keys }

// Payload returns the payload bytes of tuple i. The returned slice aliases
// the relation's storage; callers must not modify it.
func (r *Relation) Payload(i int) []byte {
	w := r.schema.PayloadWidth
	if w == 0 {
		return nil
	}
	return r.pay[i*w : (i+1)*w : (i+1)*w]
}

// PayloadColumn returns the whole payload area. Callers must not modify it.
func (r *Relation) PayloadColumn() []byte { return r.pay }

// Append adds one tuple. The payload must be exactly PayloadWidth bytes
// (nil is accepted when PayloadWidth is zero).
func (r *Relation) Append(key uint64, payload []byte) error {
	if len(payload) != r.schema.PayloadWidth {
		return fmt.Errorf("relation: append to %q: payload width %d, want %d",
			r.schema.Name, len(payload), r.schema.PayloadWidth)
	}
	r.keys = append(r.keys, key)
	r.pay = append(r.pay, payload...)
	return nil
}

// AppendKey adds one tuple with a zeroed payload.
func (r *Relation) AppendKey(key uint64) {
	r.keys = append(r.keys, key)
	for i := 0; i < r.schema.PayloadWidth; i++ {
		r.pay = append(r.pay, 0)
	}
}

// AppendFrom copies tuple i of src onto the end of r. The schemas must have
// equal payload widths.
func (r *Relation) AppendFrom(src *Relation, i int) error {
	if src.schema.PayloadWidth != r.schema.PayloadWidth {
		return fmt.Errorf("%w: append from %q (width %d) to %q (width %d)",
			ErrSchemaMismatch, src.schema.Name, src.schema.PayloadWidth, r.schema.Name, r.schema.PayloadWidth)
	}
	r.keys = append(r.keys, src.keys[i])
	r.pay = append(r.pay, src.Payload(i)...)
	return nil
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	cp := &Relation{
		schema: r.schema,
		keys:   make([]uint64, len(r.keys)),
		pay:    make([]byte, len(r.pay)),
	}
	copy(cp.keys, r.keys)
	copy(cp.pay, r.pay)
	return cp
}

// Slice returns a view of tuples [lo, hi). The view aliases r's storage.
func (r *Relation) Slice(lo, hi int) (*Relation, error) {
	if lo < 0 || hi < lo || hi > len(r.keys) {
		return nil, fmt.Errorf("relation: slice [%d,%d) of %q with %d tuples out of range",
			lo, hi, r.schema.Name, len(r.keys))
	}
	w := r.schema.PayloadWidth
	return &Relation{
		schema: r.schema,
		keys:   r.keys[lo:hi:hi],
		pay:    r.pay[lo*w : hi*w : hi*w],
	}, nil
}

// Reset truncates the relation to zero tuples, keeping capacity.
func (r *Relation) Reset() {
	r.keys = r.keys[:0]
	r.pay = r.pay[:0]
}

// String implements fmt.Stringer for diagnostics.
func (r *Relation) String() string {
	return fmt.Sprintf("%s[%d tuples, %d B]", r.schema.Name, r.Len(), r.Bytes())
}

// Equal reports whether two relations have identical schema layout and
// tuple-for-tuple identical contents (order-sensitive).
func (r *Relation) Equal(o *Relation) bool {
	if r.schema.PayloadWidth != o.schema.PayloadWidth || len(r.keys) != len(o.keys) {
		return false
	}
	for i := range r.keys {
		if r.keys[i] != o.keys[i] {
			return false
		}
	}
	return string(r.pay) == string(o.pay)
}
