package relation

import (
	"testing"
	"testing/quick"
)

func mustAppend(t *testing.T, r *Relation, key uint64, pay []byte) {
	t.Helper()
	if err := r.Append(key, pay); err != nil {
		t.Fatalf("Append(%d): %v", key, err)
	}
}

func TestSchemaValidate(t *testing.T) {
	tests := []struct {
		name    string
		schema  Schema
		wantErr bool
	}{
		{"zero payload", Schema{Name: "R"}, false},
		{"normal", Schema{Name: "R", PayloadWidth: 4}, false},
		{"negative", Schema{Name: "R", PayloadWidth: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.schema.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTupleWidth(t *testing.T) {
	s := Schema{Name: "R", PayloadWidth: 4}
	if got, want := s.TupleWidth(), 12; got != want {
		t.Errorf("TupleWidth() = %d, want %d (paper's 12-byte tuples)", got, want)
	}
}

func TestAppendAndAccess(t *testing.T) {
	r := New(Schema{Name: "R", PayloadWidth: 4}, 0)
	mustAppend(t, r, 7, []byte{1, 2, 3, 4})
	mustAppend(t, r, 9, []byte{5, 6, 7, 8})
	if r.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", r.Len())
	}
	if r.Key(1) != 9 {
		t.Errorf("Key(1) = %d, want 9", r.Key(1))
	}
	if got := r.Payload(0); string(got) != string([]byte{1, 2, 3, 4}) {
		t.Errorf("Payload(0) = %v", got)
	}
	if got := r.Bytes(); got != 24 {
		t.Errorf("Bytes() = %d, want 24", got)
	}
}

func TestAppendWidthMismatch(t *testing.T) {
	r := New(Schema{Name: "R", PayloadWidth: 4}, 0)
	if err := r.Append(1, []byte{1, 2}); err == nil {
		t.Error("Append with short payload: want error, got nil")
	}
}

func TestAppendKeyZeroesPayload(t *testing.T) {
	r := New(Schema{Name: "R", PayloadWidth: 3}, 0)
	r.AppendKey(42)
	if got := r.Payload(0); len(got) != 3 || got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Errorf("Payload(0) = %v, want zeroed 3 bytes", got)
	}
}

func TestZeroPayloadWidth(t *testing.T) {
	r := New(Schema{Name: "K"}, 0)
	if err := r.Append(5, nil); err != nil {
		t.Fatalf("Append(nil payload): %v", err)
	}
	if r.Payload(0) != nil {
		t.Errorf("Payload(0) = %v, want nil", r.Payload(0))
	}
}

func TestWrap(t *testing.T) {
	keys := []uint64{1, 2, 3}
	pay := []byte{10, 20, 30}
	r, err := Wrap(Schema{Name: "W", PayloadWidth: 1}, keys, pay)
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	if r.Len() != 3 || r.Payload(2)[0] != 30 {
		t.Errorf("wrapped relation wrong: len=%d", r.Len())
	}
	if _, err := Wrap(Schema{PayloadWidth: 2}, keys, pay); err == nil {
		t.Error("Wrap with mismatched payload length: want error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := New(Schema{Name: "R", PayloadWidth: 1}, 0)
	mustAppend(t, r, 1, []byte{9})
	cp := r.Clone()
	mustAppend(t, r, 2, []byte{8})
	if cp.Len() != 1 {
		t.Errorf("clone affected by append: len=%d", cp.Len())
	}
	if !cp.Equal(mustSlice(t, r, 0, 1)) {
		t.Error("clone differs from original prefix")
	}
}

func mustSlice(t *testing.T, r *Relation, lo, hi int) *Relation {
	t.Helper()
	s, err := r.Slice(lo, hi)
	if err != nil {
		t.Fatalf("Slice(%d,%d): %v", lo, hi, err)
	}
	return s
}

func TestSliceBounds(t *testing.T) {
	r := FromKeys(Schema{Name: "R"}, []uint64{1, 2, 3})
	tests := []struct {
		lo, hi  int
		wantErr bool
		wantLen int
	}{
		{0, 3, false, 3},
		{1, 2, false, 1},
		{2, 2, false, 0},
		{-1, 2, true, 0},
		{2, 1, true, 0},
		{0, 4, true, 0},
	}
	for _, tt := range tests {
		s, err := r.Slice(tt.lo, tt.hi)
		if (err != nil) != tt.wantErr {
			t.Errorf("Slice(%d,%d) error = %v, wantErr %v", tt.lo, tt.hi, err, tt.wantErr)
			continue
		}
		if err == nil && s.Len() != tt.wantLen {
			t.Errorf("Slice(%d,%d).Len() = %d, want %d", tt.lo, tt.hi, s.Len(), tt.wantLen)
		}
	}
}

func TestAppendFromSchemaMismatch(t *testing.T) {
	a := FromKeys(Schema{Name: "A", PayloadWidth: 0}, []uint64{1})
	b := New(Schema{Name: "B", PayloadWidth: 2}, 0)
	if err := b.AppendFrom(a, 0); err == nil {
		t.Error("AppendFrom across widths: want error")
	}
}

func TestEqual(t *testing.T) {
	a := FromKeys(Schema{Name: "A", PayloadWidth: 2}, []uint64{1, 2})
	b := FromKeys(Schema{Name: "B", PayloadWidth: 2}, []uint64{1, 2})
	if !a.Equal(b) {
		t.Error("identical content, different names: want Equal")
	}
	c := FromKeys(Schema{Name: "C", PayloadWidth: 2}, []uint64{2, 1})
	if a.Equal(c) {
		t.Error("different key order: want not Equal")
	}
}

func TestResetKeepsSchema(t *testing.T) {
	r := FromKeys(Schema{Name: "R", PayloadWidth: 1}, []uint64{1, 2})
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d", r.Len())
	}
	mustAppend(t, r, 3, []byte{1})
	if r.Key(0) != 3 {
		t.Errorf("Key(0) after reuse = %d", r.Key(0))
	}
}

// TestHashKeyAvalanche checks that sequential keys spread across low bits,
// which the radix partitioning of the hash join depends on.
func TestHashKeyAvalanche(t *testing.T) {
	const buckets = 64
	var counts [buckets]int
	const n = 64 * 1024
	for k := uint64(0); k < n; k++ {
		counts[HashKey(k)%buckets]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bucket %d has %d keys, want ≈%d", b, c, want)
		}
	}
}

func TestHashKeyDeterministic(t *testing.T) {
	f := func(k uint64) bool { return HashKey(k) == HashKey(k) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
