package costmodel

import (
	"math"
	"testing"
	"time"

	"cyclojoin/internal/workload"
)

// Paper-scale workload constants used across the figure tests.
const (
	fig7Tuples  = 140_000_000 // per relation (§V-B)
	fig8RTotal  = 840_000_000 // |R| at 19.2 GB over 6 nodes
	fig12Tuples = 160_000_000 // §V-G
)

func TestDefaultAnchorsSetup(t *testing.T) {
	c := Default()
	// §V-B: 16.2 s hash-table setup for the 1.6 GB stationary relation.
	got := c.HashSetupTime(fig7Tuples).Seconds()
	if math.Abs(got-16.2) > 0.3 {
		t.Errorf("single-host hash setup = %.2fs, paper reports 16.2s", got)
	}
	// Distribution over six hosts cuts it by the node count (2.7 s).
	got6 := c.HashSetupTime(fig7Tuples / 6).Seconds()
	if math.Abs(got6-2.7) > 0.2 {
		t.Errorf("six-host hash setup = %.2fs, paper reports 2.7s", got6)
	}
}

func TestDefaultAnchorsJoinPhase(t *testing.T) {
	c := Default()
	// §V-E: hash join phase 16.2 s for |R| = 840 M tuples on 4 cores.
	got := c.HashProbeTime(fig8RTotal, 4).Seconds()
	if math.Abs(got-16.2) > 0.3 {
		t.Errorf("hash join phase = %.2fs, paper reports 16.2s", got)
	}
	// §V-E/F: merge join phase 6.4 s for the same volume.
	gotMerge := c.MergeTime(fig8RTotal, 4).Seconds()
	if math.Abs(gotMerge-6.4) > 0.3 {
		t.Errorf("merge join phase = %.2fs, paper reports 6.4s", gotMerge)
	}
}

func TestEffectiveBandwidthMatchesSectionVF(t *testing.T) {
	c := Default()
	// §V-F: 9.6 GB crossed each link in 8.7 s ≈ 1.1 GB/s.
	secs := 9.6e9 / c.EffectiveBandwidth()
	if math.Abs(secs-8.7) > 0.3 {
		t.Errorf("9.6 GB transfer = %.2fs, paper reports 8.7s", secs)
	}
}

func TestRDMAThroughputShape(t *testing.T) {
	c := Default()
	// Monotone non-decreasing in chunk size.
	prev := 0.0
	for _, chunk := range []int{1, 64, 1024, 4096, 64 << 10, 1 << 20, 1 << 30} {
		tp := c.RDMAThroughput(chunk)
		if tp < prev {
			t.Errorf("throughput decreased at chunk %d", chunk)
		}
		prev = tp
	}
	// Fig 5: tiny transfers are overhead-bound...
	if frac := c.RDMAThroughput(1) / c.EffectiveBandwidth(); frac > 0.01 {
		t.Errorf("1 B chunks reach %.1f%% of link; should be negligible", frac*100)
	}
	// ...link saturates in the ≳4 kB–1 MB region (§III-C: "maximum
	// network throughput for units of size 1 MB and larger").
	if frac := c.RDMAThroughput(4096) / c.EffectiveBandwidth(); frac < 0.5 {
		t.Errorf("4 kB chunks reach only %.1f%% of link", frac*100)
	}
	if frac := c.RDMAThroughput(1<<20) / c.EffectiveBandwidth(); frac < 0.99 {
		t.Errorf("1 MB chunks reach only %.1f%% of link", frac*100)
	}
	if c.RDMAThroughput(0) != 0 || c.RDMAThroughput(-1) != 0 {
		t.Error("non-positive chunk must yield zero throughput")
	}
}

func TestSortSetupShape(t *testing.T) {
	c := Default()
	// Single-host sort of a Fig 10 fragment is in the tens of seconds —
	// far above the 16.2 s hash setup, which is Fig 10's whole point.
	single := c.SortSetupTime(fig7Tuples)
	if single < 50*time.Second || single > 120*time.Second {
		t.Errorf("single-host sort = %v, expected tens of seconds", single)
	}
	if c.SortSetupTime(fig7Tuples) <= c.HashSetupTime(fig7Tuples) {
		t.Error("sorting must cost more than hash-table generation")
	}
	// Superlinear: sorting 6 small fragments in parallel beats one big.
	if 6*c.SortSetupTime(fig7Tuples/6) >= c.SortSetupTime(fig7Tuples)*6 {
		t.Log("n log n growth sanity")
	}
	if c.SortSetupTime(1) != 0 || c.SortSetupTime(0) != 0 {
		t.Error("degenerate sorts must be free")
	}
}

// fig9Tuples is the skew experiment's per-relation cardinality (36 M
// 12-byte tuples = 412 MB, §V-D). The key domain matches the tuple count:
// uniform data is then duplicate-free.
const fig9Tuples = 36_000_000

// TestSkewedProbeUniformFlat reproduces Fig 9's left edge: with uniform
// data, distribution does NOT accelerate the join phase (Equation ⋆).
func TestSkewedProbeUniformFlat(t *testing.T) {
	c := Default()
	head, ones := workload.CompactZipf(0, fig9Tuples, fig9Tuples)
	local := c.SkewedProbeTime(head, ones, 1, 4).Seconds()
	cyclo := c.SkewedProbeTime(head, ones, 6, 4).Seconds()
	if ratio := local / cyclo; ratio > 1.2 {
		t.Errorf("uniform data: local/cyclo = %.2f, want ≈1 (join phase unaffected by distribution)", ratio)
	}
}

// TestSkewedProbeAdvantageGrows reproduces Fig 9's right side: the
// cyclo-join advantage grows with the Zipf factor, reaching ≈5× at z=0.9.
func TestSkewedProbeAdvantageGrows(t *testing.T) {
	c := Default()
	advantage := func(z float64) float64 {
		head, ones := workload.CompactZipf(z, fig9Tuples, fig9Tuples)
		local := c.SkewedProbeTime(head, ones, 1, 4).Seconds()
		cyclo := c.SkewedProbeTime(head, ones, 6, 4).Seconds()
		return local / cyclo
	}
	a3, a6, a7, a9 := advantage(0.3), advantage(0.6), advantage(0.7), advantage(0.9)
	if !(a3 < a6 && a6 < a7 && a7 < a9) {
		t.Errorf("advantage not monotone in z: %.2f %.2f %.2f %.2f", a3, a6, a7, a9)
	}
	if a9 < 3 || a9 > 8 {
		t.Errorf("advantage at z=0.9 = %.2fx, paper reports ≈5x", a9)
	}
	// At z=0.3 the skew effect has not kicked in yet (Fig 9: noticeable
	// only from z=0.6).
	if a3 > 2 {
		t.Errorf("advantage at z=0.3 = %.2fx, should be small", a3)
	}
}

// TestSkewedProbeDegradation: the local join must degrade dramatically at
// high skew (the "toward nested loops" effect, log-scale Fig 9).
func TestSkewedProbeDegradation(t *testing.T) {
	c := Default()
	head0, ones0 := workload.CompactZipf(0, fig9Tuples, fig9Tuples)
	head9, ones9 := workload.CompactZipf(0.9, fig9Tuples, fig9Tuples)
	flat := c.SkewedProbeTime(head0, ones0, 1, 4).Seconds()
	skewed := c.SkewedProbeTime(head9, ones9, 1, 4).Seconds()
	if skewed < 20*flat {
		t.Errorf("z=0.9 local join only %.1fx over uniform; Fig 9's log scale implies orders of magnitude", skewed/flat)
	}
}

func TestRDMAJoinPhaseTable1(t *testing.T) {
	c := Default()
	bytes := float64(fig12Tuples * c.TupleBytes) // 1.92 GB? see experiment for the 6.7 GB figure
	// Table I right column: RDMA load matches the computing cores.
	wantLoad := []float64{0.25, 0.50, 0.75, 1.00}
	for threads := 1; threads <= 4; threads++ {
		out := c.RDMAJoinPhase(fig12Tuples, bytes, threads)
		if math.Abs(out.CPULoad-wantLoad[threads-1]) > 0.02 {
			t.Errorf("RDMA load at %d threads = %.2f, want %.2f", threads, out.CPULoad, wantLoad[threads-1])
		}
	}
}

// TestTCPJoinPhaseTable1 pins the Table I left column within a few points:
// 31 / 59 / 84 / 86 %.
func TestTCPJoinPhaseTable1(t *testing.T) {
	c := Default()
	const bytesEachWay = 6.7e9 // §V-G: 2×6.7 GB data volume; |R| crosses each link
	want := []float64{0.31, 0.59, 0.84, 0.86}
	for threads := 1; threads <= 4; threads++ {
		out := c.TCPJoinPhase(fig12Tuples, bytesEachWay, threads)
		if math.Abs(out.CPULoad-want[threads-1]) > 0.05 {
			t.Errorf("TCP load at %d threads = %.2f, want %.2f", threads, out.CPULoad, want[threads-1])
		}
	}
}

// TestTCPSlowerThanRDMAEverywhere is Fig 12's headline: "The RDMA-based
// cyclo-join outperforms the TCP-based one in all configurations", with the
// largest absolute gap at 4 threads.
func TestTCPSlowerThanRDMAEverywhere(t *testing.T) {
	c := Default()
	const bytesEachWay = 6.7e9
	var gaps []time.Duration
	for threads := 1; threads <= 4; threads++ {
		r := c.RDMAJoinPhase(fig12Tuples, bytesEachWay, threads)
		k := c.TCPJoinPhase(fig12Tuples, bytesEachWay, threads)
		if k.Wall() <= r.Wall() {
			t.Errorf("%d threads: TCP %v not slower than RDMA %v", threads, k.Wall(), r.Wall())
		}
		gaps = append(gaps, k.Wall()-r.Wall())
	}
	for i := 0; i < 3; i++ {
		if gaps[3] < gaps[i] {
			t.Errorf("largest RDMA-vs-TCP gap should be at 4 threads: gaps=%v", gaps)
		}
	}
}

// TestTCPCannotHideSync: §V-G's closing observation — TCP always exposes
// synchronization time, even when compute alone exceeds transfer.
func TestTCPCannotHideSync(t *testing.T) {
	c := Default()
	out := c.TCPJoinPhase(fig12Tuples, 6.7e9, 1)
	if out.Sync <= 0 {
		t.Error("TCP join phase must expose sync time")
	}
	rdma := c.RDMAJoinPhase(fig12Tuples, 6.7e9, 1)
	if rdma.Sync != 0 {
		t.Errorf("RDMA at 1 thread is compute-bound; sync = %v, want 0", rdma.Sync)
	}
}

func TestFig3Breakdown(t *testing.T) {
	bars := Fig3Breakdown()
	if len(bars) != 3 {
		t.Fatalf("%d bars, want 3", len(bars))
	}
	tcp, toe, rdma := bars[0], bars[1], bars[2]
	if math.Abs(tcp.Total()-1.0) > 1e-9 {
		t.Errorf("kernel TCP bar must total 1.0, got %.2f", tcp.Total())
	}
	// §III-A: data movement ≈ half the total cost.
	if tcp.DataCopying < 0.45 || tcp.DataCopying > 0.55 {
		t.Errorf("data copying share = %.2f, paper says ≈50%%", tcp.DataCopying)
	}
	// Offloading only the stack "yields only little advantage".
	if saved := tcp.Total() - toe.Total(); saved > 0.25 {
		t.Errorf("TOE saves %.2f of total; paper says little", saved)
	}
	// Only RDMA significantly reduces the overhead.
	if rdma.Total() > 0.15 {
		t.Errorf("RDMA residual overhead = %.2f, should be small", rdma.Total())
	}
	if rdma.DataCopying != 0 {
		t.Error("RDMA is zero-copy")
	}
}

func TestTransferTimePositive(t *testing.T) {
	c := Default()
	if c.TransferTime(1<<20) <= 0 {
		t.Error("transfer time must be positive")
	}
	big := c.TransferTime(1 << 30)
	small := c.TransferTime(1 << 10)
	if big <= small {
		t.Error("transfer time must grow with size")
	}
}
