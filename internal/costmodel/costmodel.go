// Package costmodel holds the calibration of the paper's testbed — six IBM
// HS21 blades with quad-core 2.33 GHz Xeons, 4 MB L2, Chelsio T3 iWARP
// RNICs on 10 Gb Ethernet (§V-A) — and the analytic cost functions built on
// it.
//
// The container this reproduction runs in has neither that cluster nor any
// RDMA hardware, so the evaluation figures are regenerated through this
// model plus the discrete-event ring simulator (package simnet). Every
// constant is pinned to a number the paper itself reports; the figures'
// *shapes* (what scales, what stays flat, where crossovers sit) then emerge
// from the model rather than being drawn by hand.
package costmodel

import (
	"math"
	"time"
)

// Calibration carries the testbed parameters.
type Calibration struct {
	// CPUFreqHz is the core clock (2.33 GHz Xeons, §V-A).
	CPUFreqHz float64
	// Cores per host (quad-core, §V-A).
	Cores int
	// L2Bytes is the unified L2 cache (4 MB, §V-A).
	L2Bytes int
	// TupleBytes is the experiment tuple width (12 B, §V-B).
	TupleBytes int

	// LinkBandwidth is the nominal 10 Gb/s link rate in bytes/s.
	LinkBandwidth float64
	// LinkEfficiency scales nominal to achieved: §V-F measures 1.1 GB/s
	// against the 1.25 GB/s theoretical maximum (= 0.88).
	LinkEfficiency float64
	// WRPostOverhead is the per-work-request CPU/RNIC cost that makes
	// small transfers slow (Fig 5 saturates only ≳ 4 kB).
	WRPostOverhead time.Duration

	// HashBuildPerTuple: partition + hash-table build over the stationary
	// relation. Fig 7's text pins 16.2 s for 140 M tuples → 115.7 ns.
	HashBuildPerTuple time.Duration
	// HashProbePerTupleCore: probe cost per rotating tuple per core.
	// §V-E pins the hash join phase at 16.2 s for |R| = 840 M tuples on
	// 4 cores → 77 ns per tuple-core.
	HashProbePerTupleCore time.Duration
	// HashChainPerEntryCore is the cost of scanning one bucket-chain
	// entry when duplicate keys collide — the per-collision cost that
	// lets hash join "slowly degrade toward a nested loops-style
	// evaluation" under skew (§V-D).
	HashChainPerEntryCore time.Duration

	// SortPerCompare: sort setup cost coefficient, c·n·log₂ n. 20 ns
	// reproduces the ≈76 s single-host sort of Fig 10's 140 M-tuple
	// fragments.
	SortPerCompare time.Duration
	// MergePerTupleCore: merge-join cost per tuple per core. Fig 11's
	// text pins 6.4 s for 840 M tuples on 4 cores → 30.5 ns.
	MergePerTupleCore time.Duration

	// TCPCyclesPerByte is the kernel-stack CPU cost per payload byte,
	// summed over the send and receive paths. The testbed's Chelsio NICs
	// offload checksums even in plain-TCP mode, so this sits below the
	// classic 1 GHz-per-Gb/s rule of thumb; its value is pinned by the
	// Table I loads (TCP exceeds RDMA by ≈5-9 points at 1-3 threads).
	TCPCyclesPerByte float64
	// TCPPollutionSlope grows the join phase's cache-pollution slowdown
	// with the number of join threads competing with the kernel stack:
	// pollution(t) = 1 + slope·(t − ½) while spare cores remain.
	TCPPollutionSlope float64
	// TCPPollutionFull is the slowdown once join threads occupy all
	// cores and communication preempts them — §V-G: the benefits of the
	// cache-efficient join are "mostly annihilated".
	TCPPollutionFull float64
	// TCPSyncExposure is the fraction of transfer time the blocking
	// socket path always exposes as synchronization (§V-G: TCP "is not
	// able to fully hide the synchronization time").
	TCPSyncExposure float64
	// TCPFullBWDerate derates achievable bandwidth when the
	// communication threads own no core of their own (t == Cores).
	TCPFullBWDerate float64
	// TCPUtilizationCap is the ceiling on total CPU utilization the
	// contended TCP configuration reaches (Table I plateaus at 86 %,
	// "adding further CPUs would not yield an improvement").
	TCPUtilizationCap float64
}

// nanos converts a fractional nanosecond count to a Duration.
func nanos(f float64) time.Duration { return time.Duration(f * float64(time.Nanosecond)) }

// Default returns the paper-testbed calibration. See each field's comment
// for the sentence in the paper that pins it.
func Default() Calibration {
	return Calibration{
		CPUFreqHz:  2.33e9,
		Cores:      4,
		L2Bytes:    4 << 20,
		TupleBytes: 12,

		LinkBandwidth:  1.25e9,
		LinkEfficiency: 0.88,
		WRPostOverhead: 1 * time.Microsecond,

		HashBuildPerTuple:     nanos(115.7),
		HashProbePerTupleCore: 77 * time.Nanosecond,
		HashChainPerEntryCore: 6 * time.Nanosecond,

		SortPerCompare:    20 * time.Nanosecond,
		MergePerTupleCore: nanos(30.5),

		TCPCyclesPerByte:  0.8,
		TCPPollutionSlope: 0.2,
		TCPPollutionFull:  2.2,
		TCPSyncExposure:   0.12,
		TCPFullBWDerate:   0.75,
		TCPUtilizationCap: 0.86,
	}
}

// EffectiveBandwidth is the achieved link throughput for large transfers.
func (c Calibration) EffectiveBandwidth() float64 {
	return c.LinkBandwidth * c.LinkEfficiency
}

// RDMAThroughput models Fig 5: achieved throughput (bytes/s) as a function
// of the transfer-unit size. Each work request costs WRPostOverhead
// regardless of size, so tiny units are overhead-bound and the link
// saturates only once units reach a few kilobytes.
func (c Calibration) RDMAThroughput(chunkBytes int) float64 {
	if chunkBytes <= 0 {
		return 0
	}
	wire := float64(chunkBytes) / c.EffectiveBandwidth()
	per := wire + c.WRPostOverhead.Seconds()
	return float64(chunkBytes) / per
}

// TransferTime is the wire time for a message of the given size, including
// the per-work-request overhead.
func (c Calibration) TransferTime(bytes int) time.Duration {
	secs := float64(bytes)/c.EffectiveBandwidth() + c.WRPostOverhead.Seconds()
	return time.Duration(secs * float64(time.Second))
}

// HashSetupTime is the setup phase over a stationary fragment of n tuples:
// radix partitioning plus hash-table build.
func (c Calibration) HashSetupTime(tuples int) time.Duration {
	return time.Duration(tuples) * c.HashBuildPerTuple
}

// HashProbeTime is the join phase cost of probing n rotating tuples with
// unique (collision-free) keys on `threads` cores.
func (c Calibration) HashProbeTime(tuples, threads int) time.Duration {
	if threads < 1 {
		threads = 1
	}
	return time.Duration(float64(tuples) * float64(c.HashProbePerTupleCore) / float64(threads))
}

// SortSetupTime is c·n·log₂n — the qsort of one fragment. The paper sorts
// R_i and S_i concurrently, so a host's setup wall-clock is SortSetupTime
// of the larger fragment.
func (c Calibration) SortSetupTime(tuples int) time.Duration {
	if tuples < 2 {
		return 0
	}
	n := float64(tuples)
	return time.Duration(n * math.Log2(n) * float64(c.SortPerCompare))
}

// MergeTime is the merge-join phase over n rotating tuples on `threads`
// cores.
func (c Calibration) MergeTime(tuples, threads int) time.Duration {
	if threads < 1 {
		threads = 1
	}
	return time.Duration(float64(tuples) * float64(c.MergePerTupleCore) / float64(threads))
}

// SkewedProbeTime models the hash-join join phase over Zipf-skewed input
// (Fig 9). head[r] is the multiplicity of hot key rank r in *each* relation
// (both sides drawn from the same distribution, as the paper's generator
// does); singletons is the number of additional keys that occur once.
// nodes is the ring size (1 = the local baseline); threads is per-host
// parallelism.
//
// Every host probes all of R once per revolution. A key with S-side
// multiplicity m collides into a bucket chain: locally the chain holds all
// m duplicates, on a ring of N hosts only ≈ m/N of them, because the even
// partitioning of S spreads the duplicates across hosts. The per-host join
// work is therefore
//
//	Σ_keys m · (probe + chain·m/N)
//
// Splitting the chains across N hosts is both of §V-D's effects at once:
// the match-emission work parallelizes across the ring, and each host's
// partitions stay small enough to remain cache-resident. With uniform data
// (m = 1) the N-dependence vanishes — Equation (⋆): distribution does not
// accelerate the join phase.
func (c Calibration) SkewedProbeTime(head []int, singletons, nodes, threads int) time.Duration {
	if nodes < 1 {
		nodes = 1
	}
	if threads < 1 {
		threads = 1
	}
	probe := c.HashProbePerTupleCore.Seconds()
	chain := c.HashChainPerEntryCore.Seconds()
	n := float64(nodes)
	seconds := float64(singletons) * (probe + chain/n)
	for _, m := range head {
		if m <= 0 {
			continue
		}
		mf := float64(m)
		seconds += mf * (probe + chain*mf/n)
	}
	return time.Duration(seconds / float64(threads) * float64(time.Second))
}

// CPUBreakdown is the Fig 3 decomposition of communication CPU overhead,
// as fractions of the kernel-TCP total.
type CPUBreakdown struct {
	// Label names the configuration.
	Label string
	// DataCopying, ContextSwitches, NetworkStack and Driver are fractions
	// of the kernel-TCP total overhead (the leftmost bar sums to 1).
	DataCopying, ContextSwitches, NetworkStack, Driver float64
}

// Total sums the components.
func (b CPUBreakdown) Total() float64 {
	return b.DataCopying + b.ContextSwitches + b.NetworkStack + b.Driver
}

// Fig3Breakdown returns the three bars of Fig 3: data movement dominates
// (≈50 %, §III-A), so a TCP-offload engine that removes only the network
// stack barely helps, while RDMA eliminates the copies and most context
// switches.
func Fig3Breakdown() []CPUBreakdown {
	return []CPUBreakdown{
		{Label: "Everything on CPU", DataCopying: 0.50, ContextSwitches: 0.20, NetworkStack: 0.15, Driver: 0.15},
		{Label: "Network Stack on NIC", DataCopying: 0.50, ContextSwitches: 0.16, NetworkStack: 0.00, Driver: 0.15},
		{Label: "RDMA", DataCopying: 0.00, ContextSwitches: 0.04, NetworkStack: 0.00, Driver: 0.04},
	}
}
