package costmodel

import "time"

// PhaseOutcome is one configuration's join-phase result in the Fig 12 /
// Table I experiment: the compute portion (the "join" bar), the time the
// join entities waited for data (the "sync" bar) and the host CPU load.
type PhaseOutcome struct {
	// Compute is the pure join work's wall-clock share.
	Compute time.Duration
	// Sync is the wall-clock time spent waiting for the transport.
	Sync time.Duration
	// CPULoad is the average fraction of all cores busy during the
	// phase (Table I; 1.0 = all four cores fully busy).
	CPULoad float64
}

// Wall is the phase's total wall-clock time.
func (o PhaseOutcome) Wall() time.Duration { return o.Compute + o.Sync }

// RDMAJoinPhase models the hash-join join phase over RDMA with `threads`
// join threads (Fig 12, black/white bars; Table I right column).
//
// rTuples is the full rotating-relation cardinality (every host scans all
// of R once per revolution); bytesEachWay is the volume each host both
// receives and forwards during the revolution. Join threads poll their
// ring buffers, so they stay busy through sync time — which is why the
// paper measures an RDMA CPU load that "matches the number of cores that
// are computing the join".
func (c Calibration) RDMAJoinPhase(rTuples int, bytesEachWay float64, threads int) PhaseOutcome {
	if threads < 1 {
		threads = 1
	}
	compute := time.Duration(float64(rTuples) * float64(c.HashProbePerTupleCore) / float64(threads))
	transfer := time.Duration(bytesEachWay / c.EffectiveBandwidth() * float64(time.Second))
	var sync time.Duration
	if transfer > compute {
		sync = transfer - compute
	}
	load := float64(threads) / float64(c.Cores)
	if load > 1 {
		load = 1
	}
	return PhaseOutcome{Compute: compute, Sync: sync, CPULoad: load}
}

// TCPJoinPhase models the same phase with the kernel-TCP transport
// (Fig 12, gray bars; Table I left column). Three effects distinguish it
// from RDMA:
//
//   - the kernel stack consumes CPU proportional to the moved bytes
//     (copies + interrupts), charged against the whole host;
//   - the join computation slows down from cache pollution and context
//     switches, progressively as join threads crowd the cores and
//     severely once they occupy all of them;
//   - the blocking socket path never fully hides transfer time
//     (TCPSyncExposure), and with no spare core the achievable bandwidth
//     itself degrades (TCPFullBWDerate).
func (c Calibration) TCPJoinPhase(rTuples int, bytesEachWay float64, threads int) PhaseOutcome {
	if threads < 1 {
		threads = 1
	}
	pollution := 1 + c.TCPPollutionSlope*(float64(threads)-0.5)
	bw := c.EffectiveBandwidth()
	if threads >= c.Cores {
		pollution = c.TCPPollutionFull
		bw *= c.TCPFullBWDerate
	} else {
		// Communication is CPU-bound when the spare cores cannot feed
		// the stack fast enough.
		spare := float64(c.Cores - threads)
		commCap := spare * c.CPUFreqHz / c.TCPCyclesPerByte
		if commCap < bw {
			bw = commCap
		}
	}
	computeCPU := float64(rTuples) * c.HashProbePerTupleCore.Seconds() * pollution // core-seconds
	computeWall := computeCPU / float64(threads)
	transfer := bytesEachWay / bw

	syncSecs := c.TCPSyncExposure * transfer
	if transfer > computeWall {
		syncSecs += transfer - computeWall
	}
	wall := computeWall + syncSecs

	// Stack CPU cost covers both directions of the revolution's traffic.
	commCPU := 2 * bytesEachWay * c.TCPCyclesPerByte / c.CPUFreqHz
	load := (computeCPU + commCPU) / (float64(c.Cores) * wall)
	if load > c.TCPUtilizationCap {
		load = c.TCPUtilizationCap
	}
	return PhaseOutcome{
		Compute: time.Duration(computeWall * float64(time.Second)),
		Sync:    time.Duration(syncSecs * float64(time.Second)),
		CPULoad: load,
	}
}
