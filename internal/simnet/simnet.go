// Package simnet is a discrete-event simulator of the Data Roundabout ring
// at the paper's hardware scale.
//
// The container this reproduction runs on has one CPU core and no 10 Gb/s
// links, so wall-clock measurements cannot reproduce the paper's cluster
// numbers directly. Instead, the evaluation harness feeds the calibrated
// per-fragment costs (package costmodel) into this simulator, which models
// exactly the pipeline the real runtime (package ring) implements:
//
//   - per host, a join entity that processes one fragment at a time;
//   - unidirectional links with finite bandwidth and per-transfer
//     overhead;
//   - a finite pool of ring-buffer slots per host: a transfer into a host
//     may only start when the host has a free slot, which is the RDMA
//     receiver-not-ready backpressure of the real transport.
//
// The headline behaviours of §V — communication fully hidden behind the
// hash join, sync time appearing when the merge join outruns the link
// (Fig 11), and ring-buffer slack absorbing skew imbalance (Fig 9) —
// emerge from this event simulation; they are not closed-form formulas.
package simnet

import (
	"container/heap"
	"fmt"
	"time"
)

// Config describes one simulated ring run (the join phase only; setup is
// accounted analytically by the experiments).
type Config struct {
	// Hosts is the ring size.
	Hosts int
	// Slots is the per-host ring-buffer capacity in fragments.
	Slots int
	// Bandwidth is the per-link effective bandwidth in bytes/second.
	Bandwidth float64
	// TransferOverhead is the fixed per-fragment transfer cost (work
	// request posting, framing).
	TransferOverhead time.Duration
	// FragsPerHost is the number of rotating fragments homed at each
	// host.
	FragsPerHost int
	// FragBytes returns the wire size of fragment f (fragments are
	// numbered 0..Hosts*FragsPerHost-1; fragment f is homed at host
	// f mod Hosts).
	FragBytes func(f int) int
	// Work returns the join entity's processing time for fragment f at
	// host h.
	Work func(f, h int) time.Duration
	// ReturnHome makes fragments travel the final link back to their
	// home host before retiring, as in a continuously circulating Data
	// Cyclotron ring. §V-F's accounting — "the entire relation R has to
	// be pumped once through each participating host", 9.6 GB per link —
	// corresponds to this mode; without it each link carries only
	// (n−1)/n of R.
	ReturnHome bool
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.Hosts < 1:
		return fmt.Errorf("simnet: %d hosts", c.Hosts)
	case c.Slots < 1:
		return fmt.Errorf("simnet: %d buffer slots", c.Slots)
	case c.Bandwidth <= 0:
		return fmt.Errorf("simnet: bandwidth %g", c.Bandwidth)
	case c.FragsPerHost < 1:
		return fmt.Errorf("simnet: %d fragments per host", c.FragsPerHost)
	case c.FragBytes == nil || c.Work == nil:
		return fmt.Errorf("simnet: nil cost callbacks")
	}
	return nil
}

// HostStats is one simulated host's outcome.
type HostStats struct {
	// Busy is the join entity's total processing time.
	Busy time.Duration
	// Wait is the join entity's idle time between fragments while the
	// run was still in progress — the paper's "sync" time.
	Wait time.Duration
	// Processed counts fragment visits.
	Processed int
	// LastDone is when the host finished its final fragment.
	LastDone time.Duration
}

// Result is the simulated join phase outcome.
type Result struct {
	// Wall is the time at which the last fragment retired.
	Wall time.Duration
	// Hosts holds per-host statistics.
	Hosts []HostStats
	// BytesPerLink is the volume that crossed each link (identical for
	// all links after a full revolution).
	BytesPerLink int64
}

// MaxWait returns the largest per-host sync time.
func (r Result) MaxWait() time.Duration {
	var w time.Duration
	for _, h := range r.Hosts {
		if h.Wait > w {
			w = h.Wait
		}
	}
	return w
}

// AvgWait returns the mean per-host sync time.
func (r Result) AvgWait() time.Duration {
	if len(r.Hosts) == 0 {
		return 0
	}
	var sum time.Duration
	for _, h := range r.Hosts {
		sum += h.Wait
	}
	return sum / time.Duration(len(r.Hosts))
}

// event is a scheduled simulation step.
type event struct {
	at   time.Duration
	kind eventKind
	host int // processing host or transfer destination
	frag int
	seq  int // tie-breaker for deterministic ordering
}

type eventKind uint8

const (
	evProcessDone eventKind = iota + 1
	evTransferDone
)

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// fragState tracks one rotating fragment.
type fragState struct {
	hops int // hosts processed so far
	at   int // current host
}

// hostState tracks one simulated host. slotsUsed counts the receive-side
// ring-buffer credits: fragments queued or being processed (and transfers
// in flight toward this host, which reserve their credit at transfer
// start). Processed fragments awaiting the outbound link do not hold a
// receive credit — in the real runtime they sit in registered *send*
// buffers — and their number is naturally bounded by the fragment
// population.
type hostState struct {
	queue     []int // fragment ids awaiting processing (FIFO)
	outQ      []int // processed fragments awaiting link transfer (FIFO)
	slotsUsed int
	busyWith  int // fragment being processed, -1 if idle
	idleSince time.Duration
	linkBusy  bool // outbound link currently transferring
	stats     HostStats
}

// Run simulates one full revolution and returns the outcome.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	nFrags := cfg.Hosts * cfg.FragsPerHost
	frags := make([]fragState, nFrags)
	hosts := make([]hostState, cfg.Hosts)
	for h := range hosts {
		hosts[h].busyWith = -1
	}

	var q eventQueue
	seq := 0
	push := func(at time.Duration, kind eventKind, host, frag int) {
		heap.Push(&q, event{at: at, kind: kind, host: host, frag: frag, seq: seq})
		seq++
	}

	// Pending injections: home fragments enter their host as slots allow.
	pendingInject := make([][]int, cfg.Hosts)
	for f := 0; f < nFrags; f++ {
		h := f % cfg.Hosts
		frags[f].at = h
		pendingInject[h] = append(pendingInject[h], f)
	}

	var now time.Duration
	retired := 0
	var bytesPerLink int64

	// tryInject moves pending home fragments into free slots.
	tryInject := func(h int) {
		hs := &hosts[h]
		for len(pendingInject[h]) > 0 && hs.slotsUsed < cfg.Slots {
			f := pendingInject[h][0]
			pendingInject[h] = pendingInject[h][1:]
			hs.slotsUsed++
			hs.queue = append(hs.queue, f)
		}
	}

	// tryProcess starts the join entity on the next queued fragment.
	tryProcess := func(h int) {
		hs := &hosts[h]
		if hs.busyWith != -1 || len(hs.queue) == 0 {
			return
		}
		f := hs.queue[0]
		hs.queue = hs.queue[1:]
		hs.busyWith = f
		// Idle time between fragments is the paper's "sync" time: the
		// join entity waiting on the transport (§V-F).
		if now > hs.idleSince {
			hs.stats.Wait += now - hs.idleSince
		}
		w := cfg.Work(f, h)
		hs.stats.Busy += w
		push(now+w, evProcessDone, h, f)
	}

	// tryTransfer starts the outbound link on the next processed fragment,
	// if the destination has a free slot (receive credit).
	tryTransfer := func(h int) {
		hs := &hosts[h]
		if hs.linkBusy || len(hs.outQ) == 0 {
			return
		}
		dst := (h + 1) % cfg.Hosts
		if hosts[dst].slotsUsed >= cfg.Slots {
			return // receiver not ready; retried when dst frees a slot
		}
		f := hs.outQ[0]
		hs.outQ = hs.outQ[1:]
		hs.linkBusy = true
		hosts[dst].slotsUsed++ // reserve the receive buffer
		bytes := cfg.FragBytes(f)
		dur := time.Duration(float64(bytes)/cfg.Bandwidth*float64(time.Second)) + cfg.TransferOverhead
		bytesPerLink += int64(bytes)
		push(now+dur, evTransferDone, dst, f)
	}

	// Prime all hosts.
	for h := range hosts {
		tryInject(h)
		tryProcess(h)
	}

	for retired < nFrags {
		if q.Len() == 0 {
			return Result{}, fmt.Errorf("simnet: deadlock with %d/%d fragments retired (slots=%d)", retired, nFrags, cfg.Slots)
		}
		e := heap.Pop(&q).(event)
		now = e.at
		switch e.kind {
		case evProcessDone:
			hs := &hosts[e.host]
			hs.busyWith = -1
			hs.idleSince = now
			hs.stats.Processed++
			hs.stats.LastDone = now
			hs.slotsUsed-- // receive credit released either way
			fs := &frags[e.frag]
			fs.hops++
			if fs.hops >= cfg.Hosts && (!cfg.ReturnHome || cfg.Hosts == 1) {
				retired++
			} else {
				// Forward — either to the next processing host or, in
				// ReturnHome mode after the last hop, on the final leg
				// back to the fragment's home.
				hs.outQ = append(hs.outQ, e.frag)
			}
			tryInject(e.host)
			tryTransfer(e.host)
			tryProcess(e.host)
			// The freed credit may unblock the upstream link.
			tryTransfer((e.host - 1 + cfg.Hosts) % cfg.Hosts)
		case evTransferDone:
			src := (e.host - 1 + cfg.Hosts) % cfg.Hosts
			hosts[src].linkBusy = false
			frags[e.frag].at = e.host
			if frags[e.frag].hops >= cfg.Hosts {
				// Fragment arrived back home fully processed: retire
				// and release the reserved receive credit.
				retired++
				hosts[e.host].slotsUsed--
				tryInject(e.host)
				// src's link is free again, and the credit this retire
				// released also feeds src's next transfer into us.
				tryTransfer(src)
				continue
			}
			// The receive credit was reserved at transfer start.
			hosts[e.host].queue = append(hosts[e.host].queue, e.frag)
			tryTransfer(src)
			tryProcess(e.host)
		}
	}

	res := Result{Wall: now, Hosts: make([]HostStats, cfg.Hosts), BytesPerLink: bytesPerLink / int64(cfg.Hosts)}
	for h := range hosts {
		res.Hosts[h] = hosts[h].stats
	}
	return res, nil
}
