package simnet

import (
	"testing"
	"time"
)

// base returns a valid config for mutation in tests.
func base() Config {
	return Config{
		Hosts:            6,
		Slots:            4,
		Bandwidth:        1.1e9,
		TransferOverhead: time.Microsecond,
		FragsPerHost:     2,
		FragBytes:        func(f int) int { return 1 << 20 },
		Work:             func(f, h int) time.Duration { return time.Millisecond },
	}
}

func TestValidate(t *testing.T) {
	muts := []struct {
		name string
		mut  func(*Config)
	}{
		{"hosts", func(c *Config) { c.Hosts = 0 }},
		{"slots", func(c *Config) { c.Slots = 0 }},
		{"bandwidth", func(c *Config) { c.Bandwidth = 0 }},
		{"frags", func(c *Config) { c.FragsPerHost = 0 }},
		{"bytes fn", func(c *Config) { c.FragBytes = nil }},
		{"work fn", func(c *Config) { c.Work = nil }},
	}
	for _, m := range muts {
		t.Run(m.name, func(t *testing.T) {
			cfg := base()
			m.mut(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestEveryHostProcessesEveryFragment: the defining revolution property.
func TestEveryHostProcessesEveryFragment(t *testing.T) {
	cfg := base()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Hosts * cfg.FragsPerHost
	for h, hs := range res.Hosts {
		if hs.Processed != want {
			t.Errorf("host %d processed %d fragments, want %d", h, hs.Processed, want)
		}
	}
}

func TestSingleHostIsPureCompute(t *testing.T) {
	cfg := base()
	cfg.Hosts = 1
	cfg.FragsPerHost = 5
	cfg.Work = func(f, h int) time.Duration { return 3 * time.Millisecond }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 15 * time.Millisecond; res.Wall != want {
		t.Errorf("wall = %v, want %v", res.Wall, want)
	}
	if res.Hosts[0].Wait != 0 {
		t.Errorf("single host waited %v", res.Hosts[0].Wait)
	}
	if res.BytesPerLink != 0 {
		t.Errorf("single host moved %d bytes", res.BytesPerLink)
	}
}

// TestComputeBoundHidesCommunication reproduces the §V-B observation: when
// processing is slower than the link, network time is fully hidden ("no
// execution time was lost otherwise").
func TestComputeBoundHidesCommunication(t *testing.T) {
	cfg := base()
	// 1 MB at 1.1 GB/s ≈ 0.9 ms transfer; 20 ms work per fragment.
	cfg.Work = func(f, h int) time.Duration { return 20 * time.Millisecond }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perHostWork := time.Duration(cfg.Hosts*cfg.FragsPerHost) * 20 * time.Millisecond
	// Wall must be within a few percent of pure compute.
	if res.Wall > perHostWork*105/100 {
		t.Errorf("wall %v exceeds compute %v by more than 5%%: communication not hidden", res.Wall, perHostWork)
	}
	if res.MaxWait() > perHostWork/20 {
		t.Errorf("sync time %v should be negligible when compute-bound", res.MaxWait())
	}
}

// TestTransferBoundExposesSync reproduces Fig 11: when the join entity is
// faster than the link, sync time appears and the wall clock is set by the
// wire.
func TestTransferBoundExposesSync(t *testing.T) {
	cfg := base()
	cfg.FragsPerHost = 4
	// 10 MB fragments ≈ 9.3 ms wire; 1 ms work.
	cfg.FragBytes = func(f int) int { return 10 << 20 }
	cfg.Work = func(f, h int) time.Duration { return time.Millisecond }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each host must receive (Hosts-1)*FragsPerHost fragments over its
	// inbound link; the wall is at least that wire time.
	wire := time.Duration(float64((cfg.Hosts-1)*cfg.FragsPerHost*(10<<20)) / cfg.Bandwidth * float64(time.Second))
	if res.Wall < wire {
		t.Errorf("wall %v below the wire floor %v", res.Wall, wire)
	}
	if res.AvgWait() < res.Wall/4 {
		t.Errorf("avg sync %v too small for a transfer-bound run (wall %v)", res.AvgWait(), res.Wall)
	}
}

// TestBytesPerLink: one revolution pushes the whole rotating volume across
// every link exactly once — §V-F's accounting (9.6 GB per link).
func TestBytesPerLink(t *testing.T) {
	cfg := base()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each fragment crosses Hosts-1 links (it is injected at its home).
	// Total across all links = nFrags*(Hosts-1)*size; per link /Hosts...
	// with even distribution every link carries (Hosts-1)*FragsPerHost
	// fragments.
	want := int64(cfg.Hosts-1) * int64(cfg.FragsPerHost) * int64(1<<20)
	if res.BytesPerLink != want {
		t.Errorf("bytes per link = %d, want %d", res.BytesPerLink, want)
	}
}

// TestMoreSlotsNeverSlower: ring-buffer slack only helps (§V-D's balancing
// argument, and the ablation benchmark's subject).
func TestMoreSlotsNeverSlower(t *testing.T) {
	// Skewed per-fragment work: fragment 0 is 20× hotter.
	work := func(f, h int) time.Duration {
		if f == 0 {
			return 20 * time.Millisecond
		}
		return time.Millisecond
	}
	var prev time.Duration
	for i, slots := range []int{1, 2, 4, 8} {
		cfg := base()
		cfg.Slots = slots
		cfg.FragsPerHost = 3
		cfg.Work = work
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Wall > prev+prev/50 {
			t.Errorf("slots=%d wall %v worse than fewer slots %v", slots, res.Wall, prev)
		}
		prev = res.Wall
	}
}

// TestSkewBalancing: with one hot fragment, a deeper ring buffer lets the
// other hosts run ahead instead of stalling behind the slow consumer.
func TestSkewBalancing(t *testing.T) {
	mk := func(slots int) time.Duration {
		cfg := base()
		cfg.Hosts = 4
		cfg.FragsPerHost = 4
		cfg.Slots = slots
		cfg.Work = func(f, h int) time.Duration {
			if f%7 == 0 {
				return 10 * time.Millisecond
			}
			return time.Millisecond
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Wall
	}
	shallow, deep := mk(1), mk(6)
	if deep > shallow {
		t.Errorf("deep buffers (%v) slower than shallow (%v)", deep, shallow)
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(base())
	if err != nil {
		t.Fatal(err)
	}
	if a.Wall != b.Wall || a.BytesPerLink != b.BytesPerLink {
		t.Error("simulation not deterministic")
	}
	for h := range a.Hosts {
		if a.Hosts[h] != b.Hosts[h] {
			t.Errorf("host %d stats differ across runs", h)
		}
	}
}

// TestLinkSerialization: a link carries one fragment at a time, so shipping
// k fragments takes at least k wire times.
func TestLinkSerialization(t *testing.T) {
	cfg := base()
	cfg.Hosts = 2
	cfg.FragsPerHost = 8
	cfg.FragBytes = func(f int) int { return 11 << 20 } // 10 ms each
	cfg.Work = func(f, h int) time.Duration { return time.Microsecond }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perWire := time.Duration(float64(11<<20) / cfg.Bandwidth * float64(time.Second))
	if res.Wall < 8*perWire {
		t.Errorf("wall %v below serialized wire floor %v", res.Wall, 8*perWire)
	}
}

// TestReturnHomeBytesPerLink: in continuous-circulation mode every link
// carries the entire rotating volume (§V-F's 9.6 GB per link accounting).
func TestReturnHomeBytesPerLink(t *testing.T) {
	cfg := base()
	cfg.ReturnHome = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Hosts) * int64(cfg.FragsPerHost) * int64(1<<20)
	if res.BytesPerLink != want {
		t.Errorf("bytes per link = %d, want full volume %d", res.BytesPerLink, want)
	}
	// Processing counts are unchanged: the homebound leg is not processed.
	for h, hs := range res.Hosts {
		if hs.Processed != cfg.Hosts*cfg.FragsPerHost {
			t.Errorf("host %d processed %d, want %d", h, hs.Processed, cfg.Hosts*cfg.FragsPerHost)
		}
	}
}

// TestReturnHomeSingleHost: degenerate ring must not self-transfer.
func TestReturnHomeSingleHost(t *testing.T) {
	cfg := base()
	cfg.Hosts = 1
	cfg.ReturnHome = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesPerLink != 0 {
		t.Errorf("single host moved %d bytes", res.BytesPerLink)
	}
}
