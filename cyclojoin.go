// Package cyclojoin is an open reproduction of "A Spinning Join That Does
// Not Get Dizzy" (Frey, Goncalves, Kersten, Teubner — ICDCS 2010): the
// cyclo-join distributed join strategy on the ring-shaped Data Roundabout
// transport layer.
//
// The package is a facade over the implementation packages:
//
//   - relations and workload generators (internal/relation,
//     internal/workload);
//   - local join algorithms — radix-partitioned hash join, sort-merge
//     join with band-join support, nested loops (internal/join/...);
//   - the RDMA-verbs-shaped transport with in-process and TCP wire
//     implementations plus a kernel-TCP baseline (internal/rdma,
//     internal/kerneltcp);
//   - the Data Roundabout ring runtime (internal/ring) and the cyclo-join
//     orchestrator (internal/core);
//   - the paper-evaluation harness: calibrated cost model, discrete-event
//     simulator and per-figure experiments (internal/costmodel,
//     internal/simnet, internal/experiments).
//
// Quickstart:
//
//	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
//		Nodes:     4,
//		Algorithm: cyclojoin.HashJoin(),
//		Predicate: cyclojoin.EquiJoin(),
//	})
//	defer cluster.Close()
//	r, _ := cyclojoin.Generate(cyclojoin.WorkloadSpec{Name: "R", Tuples: 1_000_000})
//	s, _ := cyclojoin.Generate(cyclojoin.WorkloadSpec{Name: "S", Tuples: 1_000_000})
//	result, err := cluster.JoinRelations(r, s, false)
//	fmt.Println(result.Matches(), "matches in", result.JoinTime)
package cyclojoin

import (
	"cyclojoin/internal/core"
	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/cyclotron"
	"cyclojoin/internal/experiments"
	"cyclojoin/internal/hotset"
	"cyclojoin/internal/join"
	"cyclojoin/internal/join/hashjoin"
	"cyclojoin/internal/join/nested"
	"cyclojoin/internal/join/sortmerge"
	"cyclojoin/internal/query"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/ring"
	"cyclojoin/internal/workload"
)

// Core data types.
type (
	// Relation is a columnar in-memory table (uint64 join key plus
	// fixed-width payload per tuple).
	Relation = relation.Relation
	// Schema describes a relation's physical tuple layout.
	Schema = relation.Schema
	// Fragment is one piece of a partitioned relation with its ring
	// metadata.
	Fragment = relation.Fragment
	// WorkloadSpec describes a synthetic relation to generate.
	WorkloadSpec = workload.Spec
)

// Join machinery.
type (
	// Algorithm is a pluggable two-phase local join implementation.
	Algorithm = join.Algorithm
	// Predicate is a join condition on key pairs.
	Predicate = join.Predicate
	// Collector receives join matches; it must be safe for concurrent
	// use.
	Collector = join.Collector
	// Counter counts matches.
	Counter = join.Counter
	// Materializer builds the join result as a Relation.
	Materializer = join.Materializer
	// JoinOptions tunes a local algorithm (parallelism, cache target).
	JoinOptions = join.Options
)

// Cluster orchestration.
type (
	// Config describes a cyclo-join cluster.
	Config = core.Config
	// Cluster is a running cyclo-join deployment.
	Cluster = core.Cluster
	// Result reports one distributed join's outcome.
	Result = core.Result
	// RingConfig tunes the Data Roundabout transport.
	RingConfig = ring.Config
	// LinkFactory selects the wire implementation connecting neighboring
	// ring hosts.
	LinkFactory = ring.LinkFactory
)

// Continuous circulation (the Data Cyclotron mode, §II-C).
type (
	// Wheel keeps a relation revolving and serves joins against it;
	// concurrent joins batch onto shared revolutions.
	Wheel = cyclotron.Wheel
	// WheelConfig sizes a wheel's ring.
	WheelConfig = cyclotron.Config
	// WheelJoin describes one join riding a wheel.
	WheelJoin = cyclotron.JoinSpec
	// WheelOutcome is one completed wheel join.
	WheelOutcome = cyclotron.Outcome
)

// Hot-set storage (§II-C: hot data in memory, the rest on disk).
type (
	// HotSetStore holds relations under a memory budget, spilling the
	// least recently used ones to disk and reloading them on access.
	HotSetStore = hotset.Store
	// HotRelation reports one relation's access heat.
	HotRelation = hotset.HotRelation
)

// SQL front end (§VII's "SQL-enabled system", as a working slice).
type (
	// Catalog maps table names to relations for the SQL engine.
	Catalog = query.Catalog
	// QueryEngine executes SQL join queries as chains of cyclo-join
	// revolutions.
	QueryEngine = query.Engine
	// QueryResult is a SQL query's outcome.
	QueryResult = query.Result
)

// Evaluation harness.
type (
	// Calibration carries the paper-testbed cost parameters.
	Calibration = costmodel.Calibration
	// Experiment is one reproducible table/figure of the paper.
	Experiment = experiments.Experiment
)

// NewCluster builds and starts a cyclo-join cluster.
func NewCluster(cfg Config) (*Cluster, error) { return core.NewCluster(cfg) }

// Generate materializes a synthetic relation.
func Generate(spec WorkloadSpec) (*Relation, error) { return workload.Generate(spec) }

// SequentialRelation builds a relation with keys 0..tuples−1 in order —
// a duplicate-free primary-key column.
func SequentialRelation(name string, tuples, payloadWidth int) *Relation {
	return workload.Sequential(name, tuples, payloadWidth)
}

// Partition splits a relation into n fragments in input order.
func Partition(r *Relation, n int) ([]*Fragment, error) { return relation.Partition(r, n) }

// HashJoin returns the radix-partitioned hash join of [22] (equi-joins).
func HashJoin() Algorithm { return hashjoin.Join{} }

// SortMergeJoin returns the sort-merge join (equi- and band joins).
func SortMergeJoin() Algorithm { return sortmerge.Join{} }

// NestedLoopsJoin returns the block nested-loops fallback (any predicate).
func NestedLoopsJoin() Algorithm { return nested.Join{} }

// EquiJoin returns the equality predicate.
func EquiJoin() Predicate { return join.Equi{} }

// BandJoin returns the predicate |rKey − sKey| ≤ width.
func BandJoin(width uint64) Predicate { return join.Band{Width: width} }

// ThetaJoin wraps an arbitrary key predicate (nested loops only).
func ThetaJoin(name string, fn func(rKey, sKey uint64) bool) Predicate {
	return join.Theta{Name: name, Fn: fn}
}

// NewCounter returns a match-counting collector.
func NewCounter() *Counter { return &join.Counter{} }

// NewMaterializer returns a collector that builds the join result as a
// relation keyed on the rotating side's key.
func NewMaterializer(name string, rPayWidth, sPayWidth int) *Materializer {
	return join.NewMaterializer(name, rPayWidth, sPayWidth)
}

// NewRekeyedMaterializer returns a materializing collector keyed on the
// stationary side's key — the layout a follow-up cyclo-join consumes when
// composing ternary joins.
func NewRekeyedMaterializer(name string, rPayWidth, sPayWidth int) *Materializer {
	return join.NewRekeyedMaterializer(name, rPayWidth, sPayWidth)
}

// InProcessLinks connects ring hosts with the in-process zero-copy
// transport (the default).
func InProcessLinks() LinkFactory { return ring.MemLinks() }

// TCPLoopbackLinks connects ring hosts over real TCP sockets on the
// loopback interface.
func TCPLoopbackLinks() LinkFactory { return ring.TCPLinks() }

// NewWheel starts a wheel that keeps the rotating relation circulating.
func NewWheel(cfg WheelConfig, rotating *Relation) (*Wheel, error) {
	return cyclotron.New(cfg, rotating)
}

// NewHotSetStore creates a memory-budgeted relation store that spills to
// dir.
func NewHotSetStore(budgetBytes int64, dir string) (*HotSetStore, error) {
	return hotset.New(budgetBytes, dir)
}

// NewCatalog returns an empty SQL catalog.
func NewCatalog() *Catalog { return query.NewCatalog() }

// NewQueryEngine builds a SQL engine that runs every join on a cyclo-join
// ring of the given size.
func NewQueryEngine(catalog *Catalog, nodes int, opts JoinOptions) (*QueryEngine, error) {
	return query.NewEngine(catalog, nodes, opts)
}

// DefaultCalibration returns the paper-testbed calibration (quad-core
// 2.33 GHz Xeons, 4 MB L2, 10 Gb/s iWARP).
func DefaultCalibration() Calibration { return costmodel.Default() }

// Experiments returns the paper's evaluation harness, one entry per table
// and figure.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds one experiment ("fig7", "table1", ...).
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }
