// Benchmarks regenerating the paper's evaluation (one benchmark per table
// and figure, §V), plus the ablations called out in DESIGN.md §6 and
// micro-benchmarks of the real implementation underneath.
//
// The Fig/Table benchmarks execute the calibrated model + discrete-event
// simulation at the paper's data scale and report the headline quantity of
// the corresponding figure as a custom metric (seconds of simulated time,
// speedup factors, CPU load), so `go test -bench .` prints the
// reproduction next to the benchmark name. The paper-vs-ours comparison is
// recorded in EXPERIMENTS.md.
package cyclojoin_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"cyclojoin"
	"cyclojoin/internal/core"
	"cyclojoin/internal/costmodel"
	"cyclojoin/internal/experiments"
	"cyclojoin/internal/join"
	"cyclojoin/internal/join/hashjoin"
	"cyclojoin/internal/join/nested"
	"cyclojoin/internal/join/sortmerge"
	"cyclojoin/internal/kerneltcp"
	"cyclojoin/internal/rdma"
	"cyclojoin/internal/rdma/memlink"
	"cyclojoin/internal/rdma/tcplink"
	"cyclojoin/internal/relation"
	"cyclojoin/internal/ring"
	"cyclojoin/internal/simnet"
	"cyclojoin/internal/workload"
)

// ---- paper tables and figures ----

// BenchmarkFig03CPUOverhead regenerates the Fig 3 transport overhead
// decomposition.
func BenchmarkFig03CPUOverhead(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3Rows()
		total = rows[2].Total()
	}
	b.ReportMetric(total*100, "rdma-residual-%")
}

// BenchmarkFig05ChunkSize regenerates the Fig 5 throughput sweep and
// reports the chunk size's share of the link at 4 kB (the paper's
// saturation knee).
func BenchmarkFig05ChunkSize(b *testing.B) {
	cal := costmodel.Default()
	var at4k float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5Rows(cal)
		for _, r := range rows {
			if r.ChunkBytes == 4<<10 {
				at4k = r.Throughput / cal.EffectiveBandwidth()
			}
		}
	}
	b.ReportMetric(at4k*100, "linkshare-4kB-%")
}

// BenchmarkFig07FixedData regenerates Fig 7 and reports the six-node setup
// time (paper: 2.7 s, down from 16.2 s).
func BenchmarkFig07FixedData(b *testing.B) {
	cal := costmodel.Default()
	var rows []experiments.ScaleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig7Rows(cal)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[5].Setup.Seconds(), "setup6-s")
	b.ReportMetric(rows[5].Join.Seconds(), "join6-s")
}

// BenchmarkFig08ScaleUp regenerates Fig 8 and reports the 19.2 GB join
// phase (paper: 16.2 s).
func BenchmarkFig08ScaleUp(b *testing.B) {
	cal := costmodel.Default()
	var rows []experiments.ScaleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig8Rows(cal)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[5].Join.Seconds(), "join19GB-s")
}

// BenchmarkFig09Skew regenerates Fig 9 and reports the z=0.9 cyclo-join
// advantage (paper: ≈5×).
func BenchmarkFig09Skew(b *testing.B) {
	cal := costmodel.Default()
	var adv float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9Rows(cal)
		adv = rows[len(rows)-1].Advantage()
	}
	b.ReportMetric(adv, "advantage-z0.9-x")
}

// BenchmarkFig10SortMergeFixed regenerates Fig 10 and reports the
// single-host sort setup (the figure's dominating bar).
func BenchmarkFig10SortMergeFixed(b *testing.B) {
	cal := costmodel.Default()
	var rows []experiments.ScaleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig10Rows(cal)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Setup.Seconds(), "sort1-s")
	b.ReportMetric(rows[5].Setup.Seconds(), "sort6-s")
}

// BenchmarkFig11SortMergeScaleUp regenerates Fig 11 and reports the
// six-node merge and sync times (paper: 6.4 s + 2.3 s).
func BenchmarkFig11SortMergeScaleUp(b *testing.B) {
	cal := costmodel.Default()
	var rows []experiments.ScaleRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig11Rows(cal)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[5].Join.Seconds(), "join6-s")
	b.ReportMetric(rows[5].Sync.Seconds(), "sync6-s")
}

// BenchmarkFig12RDMAvsTCP regenerates Fig 12 and reports the 4-thread
// TCP/RDMA wall-clock ratio (the paper's largest gap).
func BenchmarkFig12RDMAvsTCP(b *testing.B) {
	cal := costmodel.Default()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12Rows(cal)
		ratio = rows[3].TCP.Wall().Seconds() / rows[3].RDMA.Wall().Seconds()
	}
	b.ReportMetric(ratio, "tcp/rdma-4t-x")
}

// BenchmarkTable1CPULoad regenerates Table I and reports the 4-thread
// loads (paper: TCP 86 %, RDMA 100 %).
func BenchmarkTable1CPULoad(b *testing.B) {
	cal := costmodel.Default()
	var tcp, rdma float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12Rows(cal)
		tcp, rdma = rows[3].TCP.CPULoad, rows[3].RDMA.CPULoad
	}
	b.ReportMetric(tcp*100, "tcp4t-%")
	b.ReportMetric(rdma*100, "rdma4t-%")
}

// ---- ablations (DESIGN.md §6) ----

// BenchmarkAblationRingDepth sweeps the per-host ring-buffer depth under a
// skewed per-fragment load and reports the simulated revolution time —
// the slack that §V-D credits for skew balancing.
func BenchmarkAblationRingDepth(b *testing.B) {
	for _, slots := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			var wall time.Duration
			for i := 0; i < b.N; i++ {
				res, err := simnet.Run(simnet.Config{
					Hosts:        6,
					Slots:        slots,
					Bandwidth:    1.1e9,
					FragsPerHost: 8,
					FragBytes:    func(f int) int { return 16 << 20 },
					Work: func(f, h int) time.Duration {
						if f%11 == 0 {
							return 200 * time.Millisecond // hot fragment
						}
						return 15 * time.Millisecond
					},
					ReturnHome: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				wall = res.Wall
			}
			b.ReportMetric(wall.Seconds(), "simwall-s")
		})
	}
}

// BenchmarkAblationRotateSmaller measures a real distributed join rotating
// the smaller versus the larger relation (§IV-B's guidance).
func BenchmarkAblationRotateSmaller(b *testing.B) {
	big, err := workload.Generate(workload.Spec{Name: "BIG", Tuples: 400_000, KeyDomain: 100_000, Seed: 1, PayloadWidth: 4})
	if err != nil {
		b.Fatal(err)
	}
	small, err := workload.Generate(workload.Spec{Name: "SMALL", Tuples: 50_000, KeyDomain: 100_000, Seed: 2, PayloadWidth: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, rotateSmaller := range []bool{false, true} {
		b.Run(fmt.Sprintf("rotateSmaller=%v", rotateSmaller), func(b *testing.B) {
			cluster, err := core.NewCluster(core.Config{
				Nodes:     3,
				Algorithm: hashjoin.Join{},
				Predicate: join.Equi{},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				_ = cluster.Close()
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// R=big rotates unless the swap is enabled.
				if _, err := cluster.JoinRelations(big, small, rotateSmaller); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSetupReuse compares re-running Station before every
// revolution against reusing the stationed state (§IV-D's amortization).
func BenchmarkAblationSetupReuse(b *testing.B) {
	r, err := workload.Generate(workload.Spec{Name: "R", Tuples: 200_000, KeyDomain: 100_000, Seed: 3, PayloadWidth: 4})
	if err != nil {
		b.Fatal(err)
	}
	s, err := workload.Generate(workload.Spec{Name: "S", Tuples: 200_000, KeyDomain: 100_000, Seed: 4, PayloadWidth: 4})
	if err != nil {
		b.Fatal(err)
	}
	newCluster := func() *core.Cluster {
		cluster, err := core.NewCluster(core.Config{
			Nodes:     3,
			Algorithm: sortmerge.Join{},
			Predicate: join.Equi{},
		})
		if err != nil {
			b.Fatal(err)
		}
		return cluster
	}
	b.Run("stationEveryTime", func(b *testing.B) {
		cluster := newCluster()
		defer func() {
			_ = cluster.Close()
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.JoinRelations(r, s, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reuseSetup", func(b *testing.B) {
		cluster := newCluster()
		defer func() {
			_ = cluster.Close()
		}()
		if _, err := cluster.JoinRelations(r, s, false); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Rotate(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFragmentSize sweeps the ring-buffer element size and
// reports the simulated revolution time — small fragments drown in per-WR
// overhead (Fig 5's lesson applied to the ring).
func BenchmarkAblationFragmentSize(b *testing.B) {
	cal := costmodel.Default()
	const perHostBytes = 1 << 30 // 1 GB of rotating data per host
	for _, frag := range []int{64 << 10, 1 << 20, 16 << 20, 128 << 20} {
		b.Run(byteLabel(frag), func(b *testing.B) {
			frags := perHostBytes / frag
			work := time.Duration(float64(frag/cal.TupleBytes) * float64(cal.HashProbePerTupleCore) / 4)
			var wall time.Duration
			for i := 0; i < b.N; i++ {
				res, err := simnet.Run(simnet.Config{
					Hosts:            6,
					Slots:            8,
					Bandwidth:        cal.EffectiveBandwidth(),
					TransferOverhead: 40 * time.Microsecond, // WR post + doorbell + completion per element
					FragsPerHost:     frags,
					FragBytes:        func(f int) int { return frag },
					Work:             func(f, h int) time.Duration { return work },
					ReturnHome:       true,
				})
				if err != nil {
					b.Fatal(err)
				}
				wall = res.Wall
			}
			b.ReportMetric(wall.Seconds(), "simwall-s")
		})
	}
}

// BenchmarkAblationRadixBits sweeps the radix fan-out of the real hash
// join: too few partitions overflow the cache, too many thrash during
// clustering.
func BenchmarkAblationRadixBits(b *testing.B) {
	r, err := workload.Generate(workload.Spec{Name: "R", Tuples: 1_000_000, KeyDomain: 1_000_000, Seed: 5, PayloadWidth: 4})
	if err != nil {
		b.Fatal(err)
	}
	s, err := workload.Generate(workload.Spec{Name: "S", Tuples: 1_000_000, KeyDomain: 1_000_000, Seed: 6, PayloadWidth: 4})
	if err != nil {
		b.Fatal(err)
	}
	for _, bits := range []int{0, 4, 8, 12} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			opts := join.Options{RadixBits: bits}
			st, err := (hashjoin.Join{}).SetupStationary(s, join.Equi{}, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var c join.Counter
				if err := st.Join(r, &c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- micro-benchmarks of the real implementation ----

func benchRelations(b *testing.B, tuples int) (*relation.Relation, *relation.Relation) {
	b.Helper()
	r, err := workload.Generate(workload.Spec{Name: "R", Tuples: tuples, KeyDomain: tuples, Seed: 7, PayloadWidth: 4})
	if err != nil {
		b.Fatal(err)
	}
	s, err := workload.Generate(workload.Spec{Name: "S", Tuples: tuples, KeyDomain: tuples, Seed: 8, PayloadWidth: 4})
	if err != nil {
		b.Fatal(err)
	}
	return r, s
}

func BenchmarkHashJoinSetup(b *testing.B) {
	_, s := benchRelations(b, 1_000_000)
	b.SetBytes(int64(s.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (hashjoin.Join{}).SetupStationary(s, join.Equi{}, join.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinProbe(b *testing.B) {
	r, s := benchRelations(b, 1_000_000)
	st, err := (hashjoin.Join{}).SetupStationary(s, join.Equi{}, join.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(r.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Join(r, join.Discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortMergeSetup(b *testing.B) {
	r, _ := benchRelations(b, 1_000_000)
	b.SetBytes(int64(r.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (sortmerge.Join{}).SetupRotating(r, join.Equi{}, join.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSortMergeJoinPhase(b *testing.B) {
	r, s := benchRelations(b, 1_000_000)
	st, err := (sortmerge.Join{}).SetupStationary(s, join.Equi{}, join.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sorted, err := (sortmerge.Join{}).SetupRotating(r, join.Equi{}, join.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(r.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Join(sorted, join.Discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNestedLoops(b *testing.B) {
	r, s := benchRelations(b, 8_000)
	st, err := (nested.Join{}).SetupStationary(s, join.Equi{}, join.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Join(r, join.Discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFragmentCodec(b *testing.B) {
	r, _ := benchRelations(b, 100_000)
	frag := &relation.Fragment{Rel: r, Index: 0, Of: 1}
	buf := make([]byte, relation.EncodedSize(frag))
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := relation.Encode(frag, buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := relation.Decode(buf[:n], "R"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingRevolution runs a full real revolution over in-process
// links: fragments, framing, flow control, the works.
func BenchmarkRingRevolution(b *testing.B) {
	const nodes = 4
	procs := make([]ring.Processor, nodes)
	for i := range procs {
		procs[i] = ring.ProcessorFunc(func(f *relation.Fragment) error { return nil })
	}
	rg, err := ring.New(ring.Config{Nodes: nodes}, nil, procs)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		_ = rg.Close()
	}()
	rel := workload.Sequential("R", 400_000, 4)
	frags, err := relation.Partition(rel, nodes)
	if err != nil {
		b.Fatal(err)
	}
	perNode := make([][]*relation.Fragment, nodes)
	for i, f := range frags {
		perNode[i] = []*relation.Fragment{f}
	}
	b.SetBytes(int64(rel.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rg.Run(perNode); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCycloJoinEndToEnd measures a complete distributed join through
// the public API.
func BenchmarkCycloJoinEndToEnd(b *testing.B) {
	r, s := benchRelations(b, 200_000)
	cluster, err := cyclojoin.NewCluster(cyclojoin.Config{
		Nodes:     4,
		Algorithm: cyclojoin.HashJoin(),
		Predicate: cyclojoin.EquiJoin(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		_ = cluster.Close()
	}()
	b.SetBytes(int64(r.Bytes() + s.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.JoinRelations(r, s, false); err != nil {
			b.Fatal(err)
		}
	}
}

func byteLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dkB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// BenchmarkTransportThroughput is the real-code analogue of the Fig 12
// comparison: the same message stream pushed through the zero-copy
// in-process link, the TCP-socket link, and the kernel-TCP baseline with
// its extra staging copies.
func BenchmarkTransportThroughput(b *testing.B) {
	const msgSize = 1 << 20
	run := func(b *testing.B, qa, qb rdma.QueuePair) {
		b.Helper()
		dev := rdma.OpenDevice("bench")
		const inflight = 4
		for i := 0; i < inflight; i++ {
			rb, err := dev.Register(msgSize)
			if err != nil {
				b.Fatal(err)
			}
			if err := qb.PostRecv(rb); err != nil {
				b.Fatal(err)
			}
		}
		sendBufs := make([]*rdma.Buffer, inflight)
		for i := range sendBufs {
			sb, err := dev.Register(msgSize)
			if err != nil {
				b.Fatal(err)
			}
			if err := sb.SetLen(msgSize); err != nil {
				b.Fatal(err)
			}
			sendBufs[i] = sb
		}
		b.SetBytes(msgSize)
		b.ResetTimer()
		go func() {
			i := 0
			for sent := 0; sent < b.N; sent++ {
				if err := qa.PostSend(sendBufs[i%inflight]); err != nil {
					return
				}
				if (sent+1)%inflight == 0 {
					// Reap send completions to recycle buffers.
					for j := 0; j < inflight; j++ {
						if c, ok := <-qa.Completions(); !ok || c.Err != nil {
							return
						}
					}
				}
				i++
			}
		}()
		received := 0
		for received < b.N {
			c, ok := <-qb.Completions()
			if !ok {
				b.Fatal("receiver CQ closed")
			}
			if c.Err != nil {
				b.Fatal(c.Err)
			}
			if c.Op != rdma.OpRecv {
				continue
			}
			received++
			if err := qb.PostRecv(c.Buf); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		_ = qa.Close()
		_ = qb.Close()
	}

	b.Run("memlink", func(b *testing.B) {
		qa, qb := memlink.Pair()
		run(b, qa, qb)
	})
	b.Run("tcplink", func(b *testing.B) {
		c1, c2 := loopbackPair(b)
		run(b, tcplink.New(c1), tcplink.New(c2))
	})
	b.Run("kerneltcp", func(b *testing.B) {
		c1, c2 := loopbackPair(b)
		qa, _ := kerneltcp.New(c1)
		qb, _ := kerneltcp.New(c2)
		run(b, qa, qb)
	})
}

// loopbackPair returns two connected TCP sockets on 127.0.0.1.
func loopbackPair(b *testing.B) (net.Conn, net.Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		_ = ln.Close()
	}()
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		conn, err := ln.Accept()
		ch <- accepted{conn, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		b.Fatal(acc.err)
	}
	return dial, acc.conn
}

// BenchmarkRegistrationCost quantifies why the ring registers its buffer
// pool once up front (§III-C): the modeled registration cost of a pool vs
// the cost of registering per transfer.
func BenchmarkRegistrationCost(b *testing.B) {
	const bufBytes = 4 << 20
	b.Run("onceUpFront", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dev := rdma.OpenDevice("bench")
			if _, err := dev.RegisterPool(4, bufBytes); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("perTransfer", func(b *testing.B) {
		dev := rdma.OpenDevice("bench")
		for i := 0; i < b.N; i++ {
			if _, err := dev.Register(bufBytes); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(dev.Stats().ModeledCost.Seconds()/float64(b.N)*1e6, "modeled-us/op")
	})
}

// BenchmarkAblationTransportMode compares the ring's two wirings: two-sided
// send/recv versus one-sided write-with-immediate plus credits.
func BenchmarkAblationTransportMode(b *testing.B) {
	rel := workload.Sequential("R", 400_000, 4)
	for _, writes := range []bool{false, true} {
		name := "sendrecv"
		if writes {
			name = "onesided"
		}
		b.Run(name, func(b *testing.B) {
			const nodes = 4
			procs := make([]ring.Processor, nodes)
			for i := range procs {
				procs[i] = ring.ProcessorFunc(func(f *relation.Fragment) error { return nil })
			}
			rg, err := ring.New(ring.Config{Nodes: nodes, OneSidedWrites: writes}, nil, procs)
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				_ = rg.Close()
			}()
			frags, err := relation.Partition(rel, nodes)
			if err != nil {
				b.Fatal(err)
			}
			perNode := make([][]*relation.Fragment, nodes)
			for i, f := range frags {
				perNode[i] = []*relation.Fragment{f}
			}
			b.SetBytes(int64(rel.Bytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rg.Run(perNode); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
